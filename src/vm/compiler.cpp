#include "vm/compiler.hpp"

#include <optional>

#include "lang/resolver.hpp"
#include "support/string_util.hpp"

namespace bitc::vm {

using lang::Expr;
using lang::ExprKind;
using lang::FunctionDecl;
using lang::PrimOp;
using types::Type;
using types::TypeKind;
using types::TypedProgram;
using verify::ObligationKind;

namespace {

/** Compile-time constant folding over the typed AST. */
class Folder {
  public:
    /** Constant value of @p e, if statically known. */
    static std::optional<int64_t> fold(const Expr* e) {
        switch (e->kind) {
          case ExprKind::kIntLit:
            return e->int_value;
          case ExprKind::kBoolLit:
            return e->bool_value ? 1 : 0;
          case ExprKind::kPrim:
            return fold_prim(e);
          default:
            return std::nullopt;
        }
    }

  private:
    static std::optional<int64_t> fold_prim(const Expr* e) {
        std::optional<int64_t> a = fold(e->args[0]);
        if (!a) return std::nullopt;
        if (e->prim == PrimOp::kNot) return *a == 0 ? 1 : 0;
        if (e->prim == PrimOp::kNeg) return -*a;
        std::optional<int64_t> b = fold(e->args[1]);
        if (!b) return std::nullopt;
        switch (e->prim) {
          case PrimOp::kAdd: return *a + *b;
          case PrimOp::kSub: return *a - *b;
          case PrimOp::kMul: return *a * *b;
          case PrimOp::kDiv:
            if (*b == 0) return std::nullopt;  // leave the trap in
            return *a / *b;
          case PrimOp::kRem:
            if (*b == 0) return std::nullopt;
            return *a % *b;
          case PrimOp::kLt: return *a < *b ? 1 : 0;
          case PrimOp::kLe: return *a <= *b ? 1 : 0;
          case PrimOp::kGt: return *a > *b ? 1 : 0;
          case PrimOp::kGe: return *a >= *b ? 1 : 0;
          case PrimOp::kEq: return *a == *b ? 1 : 0;
          case PrimOp::kNe: return *a != *b ? 1 : 0;
          case PrimOp::kAnd: return (*a != 0 && *b != 0) ? 1 : 0;
          case PrimOp::kOr: return (*a != 0 || *b != 0) ? 1 : 0;
          case PrimOp::kBitAnd: return *a & *b;
          case PrimOp::kBitOr: return *a | *b;
          case PrimOp::kBitXor: return *a ^ *b;
          case PrimOp::kShl:
            if (*b < 0 || *b > 63) return std::nullopt;
            return static_cast<int64_t>(
                static_cast<uint64_t>(*a) << *b);
          case PrimOp::kShr:
            if (*b < 0 || *b > 63) return std::nullopt;
            return *a >> *b;
          default:
            return std::nullopt;
        }
    }
};

class FunctionCompiler {
  public:
    FunctionCompiler(TypedProgram& program,
                     const CompilerOptions& options,
                     CompiledFunction& out)
        : program_(program), options_(options), out_(out) {}

    Status run(const FunctionDecl& decl) {
        out_.name = decl.name;
        out_.num_params = static_cast<uint32_t>(decl.params.size());
        out_.num_locals = static_cast<uint32_t>(decl.num_locals);
        for (size_t i = 0; i < decl.body.size(); ++i) {
            bool last = i + 1 == decl.body.size();
            BITC_RETURN_IF_ERROR(
                compile(decl.body[i], /*want_value=*/last));
        }
        emit(Op::kRet);
        return Status::ok();
    }

  private:
    void emit(Op op, int32_t a = 0, int32_t b = 0) {
        out_.code.push_back({op, a, b});
    }

    size_t emit_patch(Op op) {
        out_.code.push_back({op, -1, 0});
        return out_.code.size() - 1;
    }

    void patch(size_t index) {
        out_.code[index].a = static_cast<int32_t>(out_.code.size());
    }

    void emit_const(int64_t value) {
        emit(Op::kConst,
             static_cast<int32_t>(value & 0xffffffffll),
             static_cast<int32_t>(value >> 32));
    }

    /** The signedness flag for the static type of @p e. */
    int32_t signed_flag(const Expr* e) {
        Type* t = program_.type_of(const_cast<Expr*>(e));
        return (t->kind == TypeKind::kInt && !t->is_signed)
                   ? 0
                   : kFlagSigned;
    }

    /** Emits kWrap if the static type is a sub-64-bit integer. */
    void emit_wrap(const Expr* e) {
        Type* t = program_.type_of(const_cast<Expr*>(e));
        if (t->kind == TypeKind::kInt && t->bits < 64) {
            emit(Op::kWrap, static_cast<int32_t>(t->bits),
                 t->is_signed ? kFlagSigned : 0);
        }
    }

    Status compile(const Expr* e, bool want_value) {
        // Constant folding: any foldable subtree becomes one kConst.
        if (options_.constant_fold) {
            if (auto value = Folder::fold(e)) {
                if (want_value) emit_const(*value);
                return Status::ok();
            }
        }
        switch (e->kind) {
          case ExprKind::kIntLit:
            if (want_value) emit_const(e->int_value);
            return Status::ok();
          case ExprKind::kBoolLit:
            if (want_value) emit_const(e->bool_value ? 1 : 0);
            return Status::ok();
          case ExprKind::kUnitLit:
            if (want_value) emit(Op::kUnit);
            return Status::ok();
          case ExprKind::kVar:
            if (want_value) {
                if (e->local_slot < 0) {
                    return internal_error("unresolved variable '" +
                                          e->name + "'");
                }
                emit(Op::kLocalGet, e->local_slot);
            }
            return Status::ok();
          case ExprKind::kPrim:
            return compile_prim(e, want_value);
          case ExprKind::kCall: {
            for (const Expr* a : e->args) {
                BITC_RETURN_IF_ERROR(compile(a, true));
            }
            emit(Op::kCall, e->callee_index);
            if (!want_value) emit(Op::kPop);
            return Status::ok();
          }
          case ExprKind::kNative: {
            if (options_.natives == nullptr) {
                return invalid_argument_error(
                    "program uses (native ...) but no native registry "
                    "was provided");
            }
            BITC_ASSIGN_OR_RETURN(uint32_t index,
                                  options_.natives->find(e->name));
            if (options_.natives->arity(index) != e->args.size()) {
                return invalid_argument_error(str_format(
                    "native '%s' takes %u argument(s), got %zu",
                    e->name.c_str(), options_.natives->arity(index),
                    e->args.size()));
            }
            for (const Expr* a : e->args) {
                BITC_RETURN_IF_ERROR(compile(a, true));
            }
            emit(Op::kCallNative, static_cast<int32_t>(index),
                 static_cast<int32_t>(e->args.size()));
            if (!want_value) emit(Op::kPop);
            return Status::ok();
          }
          case ExprKind::kIf: {
            BITC_RETURN_IF_ERROR(compile(e->args[0], true));
            size_t to_else = emit_patch(Op::kJumpIfFalse);
            BITC_RETURN_IF_ERROR(compile(e->args[1], want_value));
            size_t to_end = emit_patch(Op::kJump);
            patch(to_else);
            BITC_RETURN_IF_ERROR(compile(e->args[2], want_value));
            patch(to_end);
            return Status::ok();
          }
          case ExprKind::kLet: {
            for (const lang::LetBinding& b : e->bindings) {
                BITC_RETURN_IF_ERROR(compile(b.init, true));
                emit(Op::kLocalSet, b.slot);
            }
            return compile_body(e->body, want_value);
          }
          case ExprKind::kBegin: {
            return compile_body(e->args, want_value);
          }
          case ExprKind::kWhile: {
            size_t loop_top = out_.code.size();
            BITC_RETURN_IF_ERROR(compile(e->args[0], true));
            size_t to_exit = emit_patch(Op::kJumpIfFalse);
            for (const Expr* item : e->body) {
                BITC_RETURN_IF_ERROR(compile(item, false));
            }
            emit(Op::kJump, static_cast<int32_t>(loop_top));
            patch(to_exit);
            if (want_value) emit(Op::kUnit);
            return Status::ok();
          }
          case ExprKind::kSet: {
            BITC_RETURN_IF_ERROR(compile(e->args[0], true));
            emit(Op::kLocalSet, e->local_slot);
            if (want_value) emit(Op::kUnit);
            return Status::ok();
          }
          case ExprKind::kAssert: {
            if (proved(e, ObligationKind::kAssert)) {
                // Statically discharged; contract code vanishes.
                if (want_value) emit(Op::kUnit);
                return Status::ok();
            }
            BITC_RETURN_IF_ERROR(compile(e->args[0], true));
            emit(Op::kAssert);
            if (want_value) emit(Op::kUnit);
            return Status::ok();
          }
          case ExprKind::kArrayMake: {
            BITC_RETURN_IF_ERROR(compile(e->args[0], true));
            BITC_RETURN_IF_ERROR(compile(e->args[1], true));
            emit(Op::kArrayMake);
            if (!want_value) emit(Op::kPop);
            return Status::ok();
          }
          case ExprKind::kArrayRef: {
            BITC_RETURN_IF_ERROR(compile(e->args[0], true));
            BITC_RETURN_IF_ERROR(compile(e->args[1], true));
            emit(Op::kArrayGet, 0, bounds_flags(e));
            if (!want_value) emit(Op::kPop);
            return Status::ok();
          }
          case ExprKind::kArraySet: {
            BITC_RETURN_IF_ERROR(compile(e->args[0], true));
            BITC_RETURN_IF_ERROR(compile(e->args[1], true));
            BITC_RETURN_IF_ERROR(compile(e->args[2], true));
            emit(Op::kArraySet, 0, bounds_flags(e));
            if (want_value) emit(Op::kUnit);
            return Status::ok();
          }
          case ExprKind::kArrayLen: {
            BITC_RETURN_IF_ERROR(compile(e->args[0], true));
            emit(Op::kArrayLen);
            if (!want_value) emit(Op::kPop);
            return Status::ok();
          }
        }
        return internal_error("unhandled expression kind");
    }

    Status compile_body(const std::vector<Expr*>& body,
                        bool want_value) {
        if (body.empty()) {
            if (want_value) emit(Op::kUnit);
            return Status::ok();
        }
        for (size_t i = 0; i < body.size(); ++i) {
            bool last = i + 1 == body.size();
            BITC_RETURN_IF_ERROR(compile(body[i], last && want_value));
        }
        return Status::ok();
    }

    bool proved(const Expr* e, ObligationKind kind) const {
        return options_.elide_proved_checks &&
               options_.proofs != nullptr &&
               options_.proofs->is_proved(e, kind);
    }

    int32_t bounds_flags(const Expr* e) const {
        int32_t flags = kFlagCheckLower | kFlagCheckUpper;
        if (proved(e, ObligationKind::kBoundsLower)) {
            flags &= ~kFlagCheckLower;
        }
        if (proved(e, ObligationKind::kBoundsUpper)) {
            flags &= ~kFlagCheckUpper;
        }
        return flags;
    }

    Status compile_prim(const Expr* e, bool want_value) {
        for (const Expr* a : e->args) {
            BITC_RETURN_IF_ERROR(compile(a, true));
        }
        int32_t sign = signed_flag(e->args[0]);
        bool needs_wrap = true;
        switch (e->prim) {
          case PrimOp::kAdd: emit(Op::kAdd); break;
          case PrimOp::kSub: emit(Op::kSub); break;
          case PrimOp::kMul: emit(Op::kMul); break;
          case PrimOp::kDiv: emit(Op::kDiv, 0, sign); break;
          case PrimOp::kRem: emit(Op::kRem, 0, sign); break;
          case PrimOp::kNeg: emit(Op::kNeg); break;
          case PrimOp::kShl: emit(Op::kShl); break;
          case PrimOp::kShr: emit(Op::kShr, 0, sign); break;
          case PrimOp::kBitAnd: emit(Op::kBitAnd); break;
          case PrimOp::kBitOr: emit(Op::kBitOr); break;
          case PrimOp::kBitXor: emit(Op::kBitXor); break;
          case PrimOp::kLt: emit(Op::kLt, 0, sign); needs_wrap = false; break;
          case PrimOp::kLe: emit(Op::kLe, 0, sign); needs_wrap = false; break;
          case PrimOp::kGt: emit(Op::kGt, 0, sign); needs_wrap = false; break;
          case PrimOp::kGe: emit(Op::kGe, 0, sign); needs_wrap = false; break;
          case PrimOp::kEq: emit(Op::kEq); needs_wrap = false; break;
          case PrimOp::kNe: emit(Op::kNe); needs_wrap = false; break;
          case PrimOp::kAnd: emit(Op::kBitAnd); needs_wrap = false; break;
          case PrimOp::kOr: emit(Op::kBitOr); needs_wrap = false; break;
          case PrimOp::kNot: emit(Op::kNot); needs_wrap = false; break;
        }
        // Bit-precise semantics: results wrap to their declared width.
        if (needs_wrap) emit_wrap(e);
        if (!want_value) emit(Op::kPop);
        return Status::ok();
    }

    TypedProgram& program_;
    const CompilerOptions& options_;
    CompiledFunction& out_;
};

}  // namespace

Result<CompiledProgram>
compile_program(types::TypedProgram& program,
                const CompilerOptions& options)
{
    CompiledProgram out;
    out.functions.reserve(program.program().functions.size());
    for (const FunctionDecl& decl : program.program().functions) {
        CompiledFunction fn;
        FunctionCompiler compiler(program, options, fn);
        BITC_RETURN_IF_ERROR(compiler.run(decl));
        out.functions.push_back(std::move(fn));
    }
    return out;
}

}  // namespace bitc::vm
