#include "vm/interpreter.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "memory/generational_heap.hpp"
#include "memory/manual_heap.hpp"
#include "memory/markcompact_heap.hpp"
#include "memory/marksweep_heap.hpp"
#include "memory/refcount_heap.hpp"
#include "memory/region_heap.hpp"
#include "memory/semispace_heap.hpp"
#include "repr/scalar_type.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"
#include "support/trace.hpp"

namespace bitc::vm {

using mem::ManagedHeap;

namespace {
// Installs the opcode-index -> name hook so metrics snapshots can
// label the per-opcode table without the support layer depending on
// the VM.
[[maybe_unused]] const bool g_opcode_namer_registered = [] {
    metrics::set_opcode_namer([](size_t op) {
        return op < kNumOps ? op_name(static_cast<Op>(op)) : "invalid";
    });
    return true;
}();
}  // namespace
using mem::ObjRef;

namespace {

constexpr uint8_t kBoxTag = 1;
constexpr uint8_t kArrayTag = 2;
constexpr uint32_t kMaxArrayLen = 1u << 22;

// Labels-as-values is a GCC/Clang extension; elsewhere kThreaded
// silently degrades to the switch loop (semantics are identical).
#if defined(__GNUC__) || defined(__clang__)
#define BITC_VM_COMPUTED_GOTO 1
#else
#define BITC_VM_COMPUTED_GOTO 0
#endif

}  // namespace

const char*
value_mode_name(ValueMode mode)
{
    return mode == ValueMode::kUnboxed ? "unboxed" : "boxed";
}

const char*
dispatch_mode_name(DispatchMode mode)
{
    return mode == DispatchMode::kThreaded ? "threaded" : "switch";
}

bool
threaded_dispatch_available()
{
    return BITC_VM_COMPUTED_GOTO != 0;
}

uint64_t
OpProfile::total_count() const
{
    uint64_t sum = 0;
    for (uint64_t c : counts) sum += c;
    return sum;
}

uint64_t
OpProfile::total_nanos() const
{
    uint64_t sum = 0;
    for (uint64_t n : nanos) sum += n;
    return sum;
}

std::string
OpProfile::to_string() const
{
    std::vector<size_t> order;
    for (size_t i = 0; i < kNumOps; ++i) {
        if (counts[i] != 0) order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
        return counts[a] > counts[b];
    });
    std::string out = str_format("%-16s %14s %14s %8s\n", "op", "count",
                                 "ns", "ns/op");
    for (size_t i : order) {
        out += str_format(
            "%-16s %14llu %14llu %8.1f\n", op_name(static_cast<Op>(i)),
            static_cast<unsigned long long>(counts[i]),
            static_cast<unsigned long long>(nanos[i]),
            static_cast<double>(nanos[i]) /
                static_cast<double>(counts[i]));
    }
    out += str_format("%-16s %14llu %14llu\n", "total",
                      static_cast<unsigned long long>(total_count()),
                      static_cast<unsigned long long>(total_nanos()));
    return out;
}

const char*
heap_policy_name(HeapPolicy policy)
{
    switch (policy) {
      case HeapPolicy::kRegion: return "region";
      case HeapPolicy::kManual: return "manual";
      case HeapPolicy::kRefCount: return "refcount";
      case HeapPolicy::kMarkSweep: return "mark-sweep";
      case HeapPolicy::kMarkCompact: return "mark-compact";
      case HeapPolicy::kSemispace: return "semispace";
      case HeapPolicy::kGenerational: return "generational";
    }
    return "?";
}

std::unique_ptr<ManagedHeap>
make_heap(HeapPolicy policy, size_t heap_words)
{
    switch (policy) {
      case HeapPolicy::kRegion:
        return std::make_unique<mem::RegionHeap>(heap_words);
      case HeapPolicy::kManual:
        return std::make_unique<mem::ManualHeap>(heap_words);
      case HeapPolicy::kRefCount:
        return std::make_unique<mem::RefCountHeap>(heap_words);
      case HeapPolicy::kMarkSweep:
        return std::make_unique<mem::MarkSweepHeap>(heap_words);
      case HeapPolicy::kMarkCompact:
        return std::make_unique<mem::MarkCompactHeap>(heap_words);
      case HeapPolicy::kSemispace:
        return std::make_unique<mem::SemispaceHeap>(heap_words);
      case HeapPolicy::kGenerational:
        return std::make_unique<mem::GenerationalHeap>(
            heap_words, std::max<size_t>(heap_words / 16, 1024));
    }
    return nullptr;
}

Vm::Vm(const CompiledProgram& program, const NativeRegistry* natives,
       VmConfig config)
    : program_(program),
      natives_(natives),
      config_(config),
      heap_(make_heap(config.heap, config.heap_words))
{
}

Vm::~Vm() = default;

Status
Vm::validate() const
{
    if (config_.mode == ValueMode::kUnboxed &&
        config_.heap != HeapPolicy::kRegion &&
        config_.heap != HeapPolicy::kManual) {
        return invalid_argument_error(str_format(
            "unboxed mode requires a non-collecting heap policy "
            "(region or manual), got %s; a tracer cannot see raw "
            "words as roots",
            heap_policy_name(config_.heap)));
    }
    return Status::ok();
}

namespace {

/** Execution engine; one instance per Vm::call. */
template <ValueMode mode>
class Machine {
    using Slot =
        std::conditional_t<mode == ValueMode::kBoxed, ObjRef, uint64_t>;

    struct Frame {
        uint32_t function;
        uint32_t pc;
        uint32_t base;
    };

  public:
    Machine(const CompiledProgram& program,
            const NativeRegistry* natives, ManagedHeap& heap,
            const VmConfig& config, uint64_t& instructions,
            OpProfile* profile, bool timed)
        : program_(program),
          natives_(natives),
          heap_(heap),
          config_(config),
          instructions_(instructions),
          profile_(profile),
          timed_(timed)
    {
        stack_.assign(config.stack_slots, Slot{});
        if constexpr (mode == ValueMode::kBoxed) {
            for (Slot& slot : stack_) heap_.add_root(&slot);
        }
    }

    ~Machine() {
        if (buffer_rooted_) heap_.remove_root(&buffer_array_);
        if constexpr (mode == ValueMode::kBoxed) {
            for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
                heap_.remove_root(&*it);
            }
        }
    }

    Result<int64_t> execute(uint32_t entry, std::span<const int64_t> args,
                            std::span<int64_t> buffer = {}) {
        const CompiledFunction* entry_fn = &program_.functions[entry];
        size_t provided = args.size() + (buffer.empty() ? 0 : 1);
        if (provided != entry_fn->num_params) {
            return invalid_argument_error(str_format(
                "'%s' takes %u argument(s), got %zu",
                entry_fn->name.c_str(), entry_fn->num_params, provided));
        }
        if (!buffer.empty()) {
            BITC_RETURN_IF_ERROR(push_buffer_array(buffer));
        }
        for (int64_t a : args) {
            BITC_RETURN_IF_ERROR(push_int(a));
        }
        BITC_RETURN_IF_ERROR(reserve_locals(entry_fn, 0));
        auto result = run_dispatch(entry);
        if (result.is_ok() && !buffer.empty()) {
            BITC_RETURN_IF_ERROR(copy_buffer_out(buffer));
        }
        return result;
    }

    void set_budget(uint64_t end) { budget_end_ = end; }

  private:
    /** Routes to the configured inner loop, profiled or not. */
    Result<int64_t> run_dispatch(uint32_t entry) {
        const bool threaded =
            config_.dispatch == DispatchMode::kThreaded &&
            threaded_dispatch_available();
        if (profile_ != nullptr) {
            return threaded ? loop_threaded<true>(entry)
                            : loop_switch<true>(entry);
        }
        return threaded ? loop_threaded<false>(entry)
                        : loop_switch<false>(entry);
    }

    /**
     * Counts the dispatched opcode and — in timed mode only —
     * attributes elapsed time to the previously dispatched one.
     * Called once per instruction in profiled loops; the last opcode
     * of a run (always kRet) keeps its count but not its final slice
     * of time.  count_ops runs skip the clock reads entirely.
     */
    void profile_tick(size_t op) {
        ++profile_->counts[op];
        if (!timed_) return;
        auto now = std::chrono::steady_clock::now();
        if (prof_prev_op_ != kNumOps) {
            profile_->nanos[prof_prev_op_] += static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    now - prof_prev_time_)
                    .count());
        }
        prof_prev_op_ = op;
        prof_prev_time_ = now;
    }

    /**
     * The portable baseline: one `switch` per instruction, nested
     * switches for the flag-driven op clusters.  Kept byte-for-byte
     * equivalent to the threaded loop (the differential tests hold
     * both to identical results and retire counts).
     */
    template <bool profiled>
    Result<int64_t> loop_switch(uint32_t entry) {
        const CompiledFunction* fn = &program_.functions[entry];
        uint32_t base = 0;
        uint32_t pc = 0;
        uint32_t current = entry;

        while (true) {
            if (config_.max_instructions != 0 &&
                instructions_ >= budget_end_) {
                return resource_exhausted_error(
                    "instruction budget exceeded");
            }
            ++instructions_;
            const Instr& instr = fn->code[pc++];
            if constexpr (profiled) {
                profile_tick(static_cast<size_t>(instr.op));
            }
            switch (instr.op) {
              case Op::kConst: {
                int64_t value =
                    (static_cast<int64_t>(instr.b) << 32) |
                    static_cast<int64_t>(
                        static_cast<uint32_t>(instr.a));
                BITC_RETURN_IF_ERROR(push_int(value));
                break;
              }
              case Op::kUnit:
                BITC_RETURN_IF_ERROR(push_int(0));
                break;
              case Op::kPop:
                drop(1);
                break;
              case Op::kLocalGet:
                BITC_RETURN_IF_ERROR(
                    push_slot(base + static_cast<uint32_t>(instr.a)));
                break;
              case Op::kLocalSet:
                move_top_to(base + static_cast<uint32_t>(instr.a));
                break;
              case Op::kAdd: case Op::kSub: case Op::kMul:
              case Op::kShl: case Op::kBitAnd: case Op::kBitOr:
              case Op::kBitXor: {
                int64_t b = top_int(0);
                int64_t a = top_int(1);
                int64_t r = 0;
                switch (instr.op) {
                  case Op::kAdd:
                    r = static_cast<int64_t>(
                        static_cast<uint64_t>(a) +
                        static_cast<uint64_t>(b));
                    break;
                  case Op::kSub:
                    r = static_cast<int64_t>(
                        static_cast<uint64_t>(a) -
                        static_cast<uint64_t>(b));
                    break;
                  case Op::kMul:
                    r = static_cast<int64_t>(
                        static_cast<uint64_t>(a) *
                        static_cast<uint64_t>(b));
                    break;
                  case Op::kShl:
                    r = static_cast<int64_t>(static_cast<uint64_t>(a)
                                             << (b & 63));
                    break;
                  case Op::kBitAnd: r = a & b; break;
                  case Op::kBitOr: r = a | b; break;
                  default: r = a ^ b; break;
                }
                BITC_RETURN_IF_ERROR(replace2_int(r));
                break;
              }
              case Op::kDiv: case Op::kRem: {
                int64_t b = top_int(0);
                int64_t a = top_int(1);
                if (b == 0) {
                    return runtime_error("division by zero");
                }
                int64_t r;
                if ((instr.b & kFlagSigned) != 0) {
                    if (a == INT64_MIN && b == -1) {
                        return runtime_error(
                            "signed division overflow");
                    }
                    r = instr.op == Op::kDiv ? a / b : a % b;
                } else {
                    uint64_t ua = static_cast<uint64_t>(a);
                    uint64_t ub = static_cast<uint64_t>(b);
                    r = static_cast<int64_t>(
                        instr.op == Op::kDiv ? ua / ub : ua % ub);
                }
                BITC_RETURN_IF_ERROR(replace2_int(r));
                break;
              }
              case Op::kShr: {
                int64_t b = top_int(0);
                int64_t a = top_int(1);
                int64_t r;
                if ((instr.b & kFlagSigned) != 0) {
                    r = a >> (b & 63);
                } else {
                    r = static_cast<int64_t>(static_cast<uint64_t>(a) >>
                                             (b & 63));
                }
                BITC_RETURN_IF_ERROR(replace2_int(r));
                break;
              }
              case Op::kNeg: {
                int64_t a = top_int(0);
                BITC_RETURN_IF_ERROR(replace1_int(
                    static_cast<int64_t>(-static_cast<uint64_t>(a))));
                break;
              }
              case Op::kNot: {
                int64_t a = top_int(0);
                BITC_RETURN_IF_ERROR(replace1_int(a == 0 ? 1 : 0));
                break;
              }
              case Op::kLt: case Op::kLe: case Op::kGt: case Op::kGe: {
                int64_t b = top_int(0);
                int64_t a = top_int(1);
                bool result;
                if ((instr.b & kFlagSigned) != 0) {
                    switch (instr.op) {
                      case Op::kLt: result = a < b; break;
                      case Op::kLe: result = a <= b; break;
                      case Op::kGt: result = a > b; break;
                      default: result = a >= b; break;
                    }
                } else {
                    uint64_t ua = static_cast<uint64_t>(a);
                    uint64_t ub = static_cast<uint64_t>(b);
                    switch (instr.op) {
                      case Op::kLt: result = ua < ub; break;
                      case Op::kLe: result = ua <= ub; break;
                      case Op::kGt: result = ua > ub; break;
                      default: result = ua >= ub; break;
                    }
                }
                BITC_RETURN_IF_ERROR(replace2_int(result ? 1 : 0));
                break;
              }
              case Op::kEq: case Op::kNe: {
                int64_t b = top_int(0);
                int64_t a = top_int(1);
                bool result = instr.op == Op::kEq ? a == b : a != b;
                BITC_RETURN_IF_ERROR(replace2_int(result ? 1 : 0));
                break;
              }
              case Op::kWrap: {
                int64_t a = top_int(0);
                uint32_t bits = static_cast<uint32_t>(instr.a);
                uint64_t wrapped =
                    static_cast<uint64_t>(a) & repr::low_mask(bits);
                int64_t r =
                    (instr.b & kFlagSigned) != 0
                        ? repr::sign_extend(wrapped, bits)
                        : static_cast<int64_t>(wrapped);
                BITC_RETURN_IF_ERROR(replace1_int(r));
                break;
              }
              case Op::kJump:
                pc = static_cast<uint32_t>(instr.a);
                break;
              case Op::kJumpIfFalse: {
                int64_t cond = top_int(0);
                drop(1);
                if (cond == 0) pc = static_cast<uint32_t>(instr.a);
                break;
              }
              case Op::kCall: {
                const CompiledFunction* callee =
                    &program_.functions[static_cast<uint32_t>(instr.a)];
                frames_.push_back({current, pc, base});
                if (frames_.size() > config_.stack_slots / 4) {
                    return resource_exhausted_error(
                        "call stack overflow");
                }
                base = static_cast<uint32_t>(sp_) - callee->num_params;
                BITC_RETURN_IF_ERROR(reserve_locals(callee, base));
                fn = callee;
                current = static_cast<uint32_t>(instr.a);
                pc = 0;
                break;
              }
              case Op::kCallNative: {
                if (natives_ == nullptr) {
                    return internal_error("no native registry");
                }
                uint32_t argc = static_cast<uint32_t>(instr.b);
                native_args_.clear();
                for (uint32_t i = argc; i > 0; --i) {
                    native_args_.push_back(
                        static_cast<uint64_t>(top_int(i - 1)));
                }
                auto result = natives_->function(
                    static_cast<uint32_t>(instr.a))(native_args_);
                if (!result.is_ok()) return result.status();
                drop(argc);
                BITC_RETURN_IF_ERROR(
                    push_int(static_cast<int64_t>(result.value())));
                break;
              }
              case Op::kRet: {
                // Result sits on top; collapse the frame beneath it.
                // (When the frame is empty the result already sits at
                // base and moving would pop it.)
                if (base != sp_ - 1) {
                    put(base, stack_[sp_ - 1]);
                    shrink_to(base + 1);
                }
                if (frames_.empty()) {
                    int64_t result = top_int(0);
                    drop(1);
                    return result;
                }
                Frame f = frames_.back();
                frames_.pop_back();
                current = f.function;
                fn = &program_.functions[current];
                pc = f.pc;
                base = f.base;
                break;
              }
              case Op::kArrayMake: {
                int64_t fill = top_int(0);
                int64_t len = top_int(1);
                if (len < 0 || len > kMaxArrayLen) {
                    return runtime_error(str_format(
                        "bad array length %lld",
                        static_cast<long long>(len)));
                }
                BITC_RETURN_IF_ERROR(make_array(len, fill));
                break;
              }
              case Op::kArrayGet: {
                int64_t idx = top_int(0);
                BITC_ASSIGN_OR_RETURN(ObjRef array, array_at(1));
                BITC_RETURN_IF_ERROR(
                    bounds_check(instr.b, idx, array));
                BITC_RETURN_IF_ERROR(array_get(array, idx));
                break;
              }
              case Op::kArraySet: {
                int64_t idx = top_int(1);
                BITC_ASSIGN_OR_RETURN(ObjRef array, array_at(2));
                BITC_RETURN_IF_ERROR(
                    bounds_check(instr.b, idx, array));
                array_set(array, idx);
                break;
              }
              case Op::kArrayLen: {
                BITC_ASSIGN_OR_RETURN(ObjRef array, array_at(0));
                int64_t len = heap_.num_slots(array);
                drop(1);
                BITC_RETURN_IF_ERROR(push_int(len));
                break;
              }
              case Op::kAssert: {
                int64_t cond = top_int(0);
                drop(1);
                if (cond == 0) {
                    return runtime_error("assertion failed");
                }
                break;
              }
              case Op::kHalt:
                return internal_error("halt in function body");
            }
        }
    }

    /**
     * The threaded loop: computed-goto dispatch with each opcode's
     * operand decode specialised at its own label (no nested flag
     * switches on the hot cluster) and unboxed fast paths that touch
     * stack slots directly.  Defined out of class below; compiles to
     * loop_switch when labels-as-values is unavailable.
     */
    template <bool profiled>
    Result<int64_t> loop_threaded(uint32_t entry);

    // --- Buffer marshalling (the FFI boundary) ---------------------------

    Status push_buffer_array(std::span<const int64_t> buffer) {
        // The inbound half of the FFI boundary: an injected fault here
        // models a marshalling failure before any VM state is built.
        if (fault::inject(fault::Site::kFfiMarshal)) {
            return fault::injected_error(fault::Site::kFfiMarshal);
        }
        uint32_t n = static_cast<uint32_t>(buffer.size());
        if constexpr (mode == ValueMode::kBoxed) {
            // Box every element first (each rooted on the stack), then
            // build the array from the rooted boxes.
            for (int64_t v : buffer) {
                BITC_RETURN_IF_ERROR(push_int(v));
            }
            auto array = heap_.allocate(n, n, kArrayTag);
            if (!array.is_ok()) return array.status();
            for (uint32_t i = 0; i < n; ++i) {
                heap_.store_ref(array.value(), i, stack_[sp_ - n + i]);
            }
            buffer_array_ = array.value();
            heap_.add_root(&buffer_array_);
            buffer_rooted_ = true;
            drop(n);
            return push_raw(buffer_array_);
        } else {
            auto array = heap_.allocate(n, 0, kArrayTag);
            if (!array.is_ok()) return array.status();
            for (uint32_t i = 0; i < n; ++i) {
                heap_.store(array.value(), i,
                            static_cast<uint64_t>(buffer[i]));
            }
            buffer_array_ = array.value();
            heap_.add_root(&buffer_array_);
            buffer_rooted_ = true;
            return push_raw(static_cast<uint64_t>(buffer_array_));
        }
    }

    Status copy_buffer_out(std::span<int64_t> buffer) {
        // The outbound half: an injected fault leaves the caller's
        // buffer untouched, as a real marshalling error would.
        if (fault::inject(fault::Site::kFfiMarshal)) {
            return fault::injected_error(fault::Site::kFfiMarshal);
        }
        for (uint32_t i = 0; i < buffer.size(); ++i) {
            if constexpr (mode == ValueMode::kBoxed) {
                buffer[i] = unbox(heap_.load_ref(buffer_array_, i));
            } else {
                buffer[i] =
                    static_cast<int64_t>(heap_.load(buffer_array_, i));
            }
        }
        return Status::ok();
    }

    // --- Stack primitives ------------------------------------------------

    Status overflow_check(size_t needed) {
        if (sp_ + needed > stack_.size()) {
            return resource_exhausted_error("value stack overflow");
        }
        return Status::ok();
    }

    /** Writes a slot; in boxed mode this is the rooted-store path. */
    void put(size_t index, Slot value) {
        if constexpr (mode == ValueMode::kBoxed) {
            heap_.root_assign(&stack_[index], value);
        } else {
            stack_[index] = value;
        }
    }

    Status push_int(int64_t value) {
        BITC_RETURN_IF_ERROR(overflow_check(1));
        if constexpr (mode == ValueMode::kBoxed) {
            BITC_ASSIGN_OR_RETURN(ObjRef box, box_int(value));
            put(sp_++, box);
        } else {
            put(sp_++, static_cast<uint64_t>(value));
        }
        return Status::ok();
    }

    Status push_raw(Slot value) {
        BITC_RETURN_IF_ERROR(overflow_check(1));
        put(sp_++, value);
        return Status::ok();
    }

    Status push_slot(uint32_t index) {
        return push_raw(stack_[index]);
    }

    /** Integer view of the slot @p depth below the top. */
    int64_t top_int(size_t depth) {
        Slot s = stack_[sp_ - 1 - depth];
        if constexpr (mode == ValueMode::kBoxed) {
            return unbox(s);
        } else {
            return static_cast<int64_t>(s);
        }
    }

    void drop(size_t count) {
        for (size_t i = 0; i < count; ++i) {
            --sp_;
            if constexpr (mode == ValueMode::kBoxed) {
                // Clearing keeps dead boxes reclaimable and the root
                // set precise.
                put(sp_, mem::kNullRef);
            }
        }
    }

    /** Pops the top into slot @p index. */
    void move_top_to(uint32_t index) {
        Slot top = stack_[sp_ - 1];
        put(index, top);
        drop(1);
    }

    void shrink_to(uint32_t new_sp) {
        while (sp_ > new_sp) drop(1);
    }

    /** Replaces the top two slots with an int result. */
    Status replace2_int(int64_t value) {
        if constexpr (mode == ValueMode::kBoxed) {
            // Box before touching the operands: the allocation may
            // collect, and the operands are still rooted on the stack.
            BITC_ASSIGN_OR_RETURN(ObjRef box, box_int(value));
            put(sp_ - 2, box);
            drop(1);
        } else {
            stack_[sp_ - 2] = static_cast<uint64_t>(value);
            --sp_;
        }
        return Status::ok();
    }

    Status replace1_int(int64_t value) {
        if constexpr (mode == ValueMode::kBoxed) {
            BITC_ASSIGN_OR_RETURN(ObjRef box, box_int(value));
            put(sp_ - 1, box);
        } else {
            stack_[sp_ - 1] = static_cast<uint64_t>(value);
        }
        return Status::ok();
    }

    Status reserve_locals(const CompiledFunction* fn, uint32_t base) {
        size_t needed = base + fn->num_locals;
        if (needed > stack_.size()) {
            return resource_exhausted_error("value stack overflow");
        }
        while (sp_ < needed) {
            put(sp_++, Slot{});
        }
        return Status::ok();
    }

    // --- Boxing ----------------------------------------------------------

    Result<ObjRef> box_int(int64_t value) {
        auto box = heap_.allocate(1, 0, kBoxTag);
        if (!box.is_ok()) return box.status();
        heap_.store(box.value(), 0, static_cast<uint64_t>(value));
        return box.value();
    }

    int64_t unbox(ObjRef box) {
        assert(heap_.is_live(box));
        return static_cast<int64_t>(heap_.load(box, 0));
    }

    // --- Arrays ----------------------------------------------------------

    Result<ObjRef> array_at(size_t depth) {
        Slot s = stack_[sp_ - 1 - depth];
        ObjRef ref = static_cast<ObjRef>(s);
        if (!heap_.is_live(ref)) {
            return runtime_error("invalid array reference");
        }
        return ref;
    }

    Status bounds_check(int32_t flags, int64_t idx, ObjRef array) {
        if ((flags & kFlagCheckLower) != 0 && idx < 0) {
            return runtime_error(str_format(
                "index %lld below zero", static_cast<long long>(idx)));
        }
        if ((flags & kFlagCheckUpper) != 0 &&
            idx >= static_cast<int64_t>(heap_.num_slots(array))) {
            return runtime_error(str_format(
                "index %lld beyond length %u",
                static_cast<long long>(idx), heap_.num_slots(array)));
        }
        return Status::ok();
    }

    Status make_array(int64_t len, int64_t fill) {
        if constexpr (mode == ValueMode::kBoxed) {
            // Fill box is on the stack (rooted); array slots share it.
            auto array = heap_.allocate(static_cast<uint32_t>(len),
                                        static_cast<uint32_t>(len),
                                        kArrayTag);
            if (!array.is_ok()) return array.status();
            ObjRef fill_box = stack_[sp_ - 1];
            for (int64_t i = 0; i < len; ++i) {
                heap_.store_ref(array.value(),
                                static_cast<uint32_t>(i), fill_box);
            }
            // Root the array (over the len slot) before the operand
            // slots are cleared, so no window exists in which it is
            // unreferenced.
            put(sp_ - 2, array.value());
            drop(1);
            return Status::ok();
        } else {
            auto array = heap_.allocate(static_cast<uint32_t>(len), 0,
                                        kArrayTag);
            if (!array.is_ok()) return array.status();
            for (int64_t i = 0; i < len; ++i) {
                heap_.store(array.value(), static_cast<uint32_t>(i),
                            static_cast<uint64_t>(fill));
            }
            put(sp_ - 2, static_cast<uint64_t>(array.value()));
            drop(1);
            return Status::ok();
        }
    }

    Status array_get(ObjRef array, int64_t idx) {
        if constexpr (mode == ValueMode::kBoxed) {
            ObjRef elem =
                heap_.load_ref(array, static_cast<uint32_t>(idx));
            // Root the element over the array's slot before dropping
            // the index: root_assign increments the element before the
            // array loses its stack reference, so a cascading free of
            // the array cannot take the element with it.
            put(sp_ - 2, elem);
            drop(1);
            return Status::ok();
        } else {
            uint64_t value =
                heap_.load(array, static_cast<uint32_t>(idx));
            put(sp_ - 2, value);
            drop(1);
            return Status::ok();
        }
    }

    void array_set(ObjRef array, int64_t idx) {
        if constexpr (mode == ValueMode::kBoxed) {
            ObjRef value = stack_[sp_ - 1];
            heap_.store_ref(array, static_cast<uint32_t>(idx), value);
        } else {
            heap_.store(array, static_cast<uint32_t>(idx),
                        stack_[sp_ - 1]);
        }
        drop(3);
    }

    const CompiledProgram& program_;
    const NativeRegistry* natives_;
    ManagedHeap& heap_;
    const VmConfig& config_;
    uint64_t& instructions_;
    OpProfile* profile_ = nullptr;
    bool timed_ = false;
    size_t prof_prev_op_ = kNumOps;
    std::chrono::steady_clock::time_point prof_prev_time_{};
    uint64_t budget_end_ = UINT64_MAX;

    std::vector<Slot> stack_;
    size_t sp_ = 0;
    std::vector<Frame> frames_;
    std::vector<uint64_t> native_args_;
    ObjRef buffer_array_ = mem::kNullRef;
    bool buffer_rooted_ = false;
};

#if BITC_VM_COMPUTED_GOTO

/**
 * Fetch-and-dispatch: budget check, retire, decode once, indirect
 * jump.  Appears at the end of every handler (replicated dispatch),
 * so the branch predictor learns per-opcode successor patterns —
 * the classic threaded-code win over a single shared switch branch.
 */
#define BITC_DISPATCH()                                                \
    do {                                                               \
        if (__builtin_expect(retired >= budget_end, 0)) {              \
            return resource_exhausted_error(                           \
                "instruction budget exceeded");                        \
        }                                                              \
        ++retired;                                                     \
        instr = *ip++;                                                 \
        if constexpr (profiled) {                                      \
            profile_tick(static_cast<size_t>(instr.op));               \
        }                                                              \
        goto* kTargets[static_cast<size_t>(instr.op)];                 \
    } while (0)

/**
 * Unboxed push onto the locally-cached stack: the overflow trap is
 * the only branch, and no Status is materialised on the hot path.
 */
#define BITC_PUSH(value)                                               \
    do {                                                               \
        if (__builtin_expect(sp >= stack_cap, 0)) {                    \
            return resource_exhausted_error("value stack overflow");   \
        }                                                              \
        stack[sp++] = (value);                                         \
    } while (0)

/**
 * Unboxed bounds trap, expanded inline so the in-bounds path makes no
 * call and constructs no Status.  Messages match bounds_check's.
 */
#define BITC_BOUNDS(flags, idx, array)                                 \
    do {                                                               \
        if (((flags) & kFlagCheckLower) != 0 &&                        \
            __builtin_expect((idx) < 0, 0)) {                          \
            return runtime_error(                                      \
                str_format("index %lld below zero",                    \
                           static_cast<long long>(idx)));              \
        }                                                              \
        if (((flags) & kFlagCheckUpper) != 0 &&                        \
            __builtin_expect((idx) >= static_cast<int64_t>(            \
                                          heap_.num_slots(array)),     \
                             0)) {                                     \
            return runtime_error(                                      \
                str_format("index %lld beyond length %u",              \
                           static_cast<long long>(idx),                \
                           heap_.num_slots(array)));                   \
        }                                                              \
    } while (0)

/** Unboxed fast path for the wrap-around arithmetic cluster. */
#define BITC_ARITH(label, expr)                                        \
    label: {                                                           \
        if constexpr (mode == ValueMode::kUnboxed) {                   \
            uint64_t b = stack[sp - 1];                                \
            uint64_t a = stack[sp - 2];                                \
            stack[sp - 2] = (expr);                                    \
            --sp;                                                      \
        } else {                                                       \
            uint64_t b = static_cast<uint64_t>(top_int(0));            \
            uint64_t a = static_cast<uint64_t>(top_int(1));            \
            BITC_RETURN_IF_ERROR(                                      \
                replace2_int(static_cast<int64_t>(expr)));             \
        }                                                              \
        BITC_DISPATCH();                                               \
    }

/** Comparison cluster: signedness decoded from the flag operand. */
#define BITC_COMPARE(label, cmpop)                                     \
    label: {                                                           \
        if constexpr (mode == ValueMode::kUnboxed) {                   \
            uint64_t ub = stack[sp - 1];                               \
            uint64_t ua = stack[sp - 2];                               \
            bool r = (instr.b & kFlagSigned) != 0                      \
                         ? static_cast<int64_t>(ua)                    \
                               cmpop static_cast<int64_t>(ub)          \
                         : ua cmpop ub;                                \
            stack[sp - 2] = r ? 1 : 0;                                 \
            --sp;                                                      \
        } else {                                                       \
            int64_t b = top_int(0);                                    \
            int64_t a = top_int(1);                                    \
            bool r = (instr.b & kFlagSigned) != 0                      \
                         ? a cmpop b                                   \
                         : static_cast<uint64_t>(a)                    \
                               cmpop static_cast<uint64_t>(b);         \
            BITC_RETURN_IF_ERROR(replace2_int(r ? 1 : 0));             \
        }                                                              \
        BITC_DISPATCH();                                               \
    }

template <ValueMode mode>
template <bool profiled>
Result<int64_t>
Machine<mode>::loop_threaded(uint32_t entry)
{
    // Jump table in exact Op declaration order.
    static const void* const kTargets[] = {
        &&lb_const, &&lb_unit, &&lb_pop, &&lb_local_get,
        &&lb_local_set, &&lb_add, &&lb_sub, &&lb_mul, &&lb_div,
        &&lb_rem, &&lb_neg, &&lb_shl, &&lb_shr, &&lb_bitand,
        &&lb_bitor, &&lb_bitxor, &&lb_lt, &&lb_le, &&lb_gt, &&lb_ge,
        &&lb_eq, &&lb_ne, &&lb_not, &&lb_wrap, &&lb_jump,
        &&lb_jump_if_false, &&lb_call, &&lb_call_native, &&lb_ret,
        &&lb_array_make, &&lb_array_get, &&lb_array_set,
        &&lb_array_len, &&lb_assert, &&lb_halt,
    };
    static_assert(sizeof(kTargets) / sizeof(kTargets[0]) == kNumOps);

    const CompiledFunction* fn = &program_.functions[entry];
    const Instr* code = fn->code.data();
    const Instr* ip = code;
    uint32_t base = 0;
    uint32_t current = entry;
    Instr instr;

    // The unboxed register file: stack pointer, stack base and the
    // retire counter live in locals the compiler can keep in machine
    // registers.  Boxed handlers keep using the rooted member helpers
    // (every slot write must go through root_assign), so only the
    // retire counter is shared.  All locals are written back on every
    // exit path — including traps — by the scope guard below.
    [[maybe_unused]] Slot* const stack = stack_.data();
    [[maybe_unused]] const size_t stack_cap = stack_.size();
    const uint64_t budget_end = budget_end_;
    const size_t frame_limit = config_.stack_slots / 4;
    size_t sp = sp_;
    uint64_t retired = instructions_;

    struct ExitSync {
        uint64_t& retired;
        uint64_t& retired_out;
        size_t& sp;
        size_t& sp_out;
        bool sync_sp;
        ~ExitSync() {
            retired_out = retired;
            if (sync_sp) sp_out = sp;
        }
    } sync{retired, instructions_, sp, sp_,
           mode == ValueMode::kUnboxed};

    BITC_DISPATCH();

  lb_const: {
        int64_t value =
            (static_cast<int64_t>(instr.b) << 32) |
            static_cast<int64_t>(static_cast<uint32_t>(instr.a));
        if constexpr (mode == ValueMode::kUnboxed) {
            BITC_PUSH(static_cast<uint64_t>(value));
        } else {
            BITC_RETURN_IF_ERROR(push_int(value));
        }
        BITC_DISPATCH();
    }
  lb_unit: {
        if constexpr (mode == ValueMode::kUnboxed) {
            BITC_PUSH(0);
        } else {
            BITC_RETURN_IF_ERROR(push_int(0));
        }
        BITC_DISPATCH();
    }
  lb_pop: {
        if constexpr (mode == ValueMode::kUnboxed) {
            --sp;
        } else {
            drop(1);
        }
        BITC_DISPATCH();
    }
  lb_local_get: {
        if constexpr (mode == ValueMode::kUnboxed) {
            BITC_PUSH(stack[base + static_cast<uint32_t>(instr.a)]);
        } else {
            BITC_RETURN_IF_ERROR(
                push_slot(base + static_cast<uint32_t>(instr.a)));
        }
        BITC_DISPATCH();
    }
  lb_local_set: {
        if constexpr (mode == ValueMode::kUnboxed) {
            stack[base + static_cast<uint32_t>(instr.a)] = stack[--sp];
        } else {
            move_top_to(base + static_cast<uint32_t>(instr.a));
        }
        BITC_DISPATCH();
    }
    BITC_ARITH(lb_add, a + b)
    BITC_ARITH(lb_sub, a - b)
    BITC_ARITH(lb_mul, a * b)
    BITC_ARITH(lb_shl, a << (b & 63))
    BITC_ARITH(lb_bitand, a & b)
    BITC_ARITH(lb_bitor, a | b)
    BITC_ARITH(lb_bitxor, a ^ b)
  lb_div:
  lb_rem: {
        int64_t b;
        int64_t a;
        if constexpr (mode == ValueMode::kUnboxed) {
            b = static_cast<int64_t>(stack[sp - 1]);
            a = static_cast<int64_t>(stack[sp - 2]);
        } else {
            b = top_int(0);
            a = top_int(1);
        }
        if (b == 0) {
            return runtime_error("division by zero");
        }
        int64_t r;
        if ((instr.b & kFlagSigned) != 0) {
            if (a == INT64_MIN && b == -1) {
                return runtime_error("signed division overflow");
            }
            r = instr.op == Op::kDiv ? a / b : a % b;
        } else {
            uint64_t ua = static_cast<uint64_t>(a);
            uint64_t ub = static_cast<uint64_t>(b);
            r = static_cast<int64_t>(instr.op == Op::kDiv ? ua / ub
                                                          : ua % ub);
        }
        if constexpr (mode == ValueMode::kUnboxed) {
            stack[sp - 2] = static_cast<uint64_t>(r);
            --sp;
        } else {
            BITC_RETURN_IF_ERROR(replace2_int(r));
        }
        BITC_DISPATCH();
    }
  lb_neg: {
        if constexpr (mode == ValueMode::kUnboxed) {
            stack[sp - 1] = 0 - stack[sp - 1];
        } else {
            int64_t a = top_int(0);
            BITC_RETURN_IF_ERROR(replace1_int(
                static_cast<int64_t>(-static_cast<uint64_t>(a))));
        }
        BITC_DISPATCH();
    }
  lb_shr: {
        if constexpr (mode == ValueMode::kUnboxed) {
            uint64_t b = stack[sp - 1];
            uint64_t a = stack[sp - 2];
            stack[sp - 2] =
                (instr.b & kFlagSigned) != 0
                    ? static_cast<uint64_t>(static_cast<int64_t>(a) >>
                                            (b & 63))
                    : a >> (b & 63);
            --sp;
        } else {
            int64_t b = top_int(0);
            int64_t a = top_int(1);
            int64_t r;
            if ((instr.b & kFlagSigned) != 0) {
                r = a >> (b & 63);
            } else {
                r = static_cast<int64_t>(static_cast<uint64_t>(a) >>
                                         (b & 63));
            }
            BITC_RETURN_IF_ERROR(replace2_int(r));
        }
        BITC_DISPATCH();
    }
    BITC_COMPARE(lb_lt, <)
    BITC_COMPARE(lb_le, <=)
    BITC_COMPARE(lb_gt, >)
    BITC_COMPARE(lb_ge, >=)
  lb_eq: {
        if constexpr (mode == ValueMode::kUnboxed) {
            stack[sp - 2] = stack[sp - 2] == stack[sp - 1] ? 1 : 0;
            --sp;
        } else {
            int64_t b = top_int(0);
            int64_t a = top_int(1);
            BITC_RETURN_IF_ERROR(replace2_int(a == b ? 1 : 0));
        }
        BITC_DISPATCH();
    }
  lb_ne: {
        if constexpr (mode == ValueMode::kUnboxed) {
            stack[sp - 2] = stack[sp - 2] != stack[sp - 1] ? 1 : 0;
            --sp;
        } else {
            int64_t b = top_int(0);
            int64_t a = top_int(1);
            BITC_RETURN_IF_ERROR(replace2_int(a != b ? 1 : 0));
        }
        BITC_DISPATCH();
    }
  lb_not: {
        if constexpr (mode == ValueMode::kUnboxed) {
            stack[sp - 1] = stack[sp - 1] == 0 ? 1 : 0;
        } else {
            int64_t a = top_int(0);
            BITC_RETURN_IF_ERROR(replace1_int(a == 0 ? 1 : 0));
        }
        BITC_DISPATCH();
    }
  lb_wrap: {
        uint32_t bits = static_cast<uint32_t>(instr.a);
        if constexpr (mode == ValueMode::kUnboxed) {
            uint64_t wrapped = stack[sp - 1] & repr::low_mask(bits);
            stack[sp - 1] = static_cast<uint64_t>(
                (instr.b & kFlagSigned) != 0
                    ? repr::sign_extend(wrapped, bits)
                    : static_cast<int64_t>(wrapped));
        } else {
            int64_t a = top_int(0);
            uint64_t wrapped =
                static_cast<uint64_t>(a) & repr::low_mask(bits);
            int64_t r = (instr.b & kFlagSigned) != 0
                            ? repr::sign_extend(wrapped, bits)
                            : static_cast<int64_t>(wrapped);
            BITC_RETURN_IF_ERROR(replace1_int(r));
        }
        BITC_DISPATCH();
    }
  lb_jump: {
        ip = code + static_cast<uint32_t>(instr.a);
        BITC_DISPATCH();
    }
  lb_jump_if_false: {
        if constexpr (mode == ValueMode::kUnboxed) {
            uint64_t cond = stack[--sp];
            if (cond == 0) ip = code + static_cast<uint32_t>(instr.a);
        } else {
            int64_t cond = top_int(0);
            drop(1);
            if (cond == 0) ip = code + static_cast<uint32_t>(instr.a);
        }
        BITC_DISPATCH();
    }
  lb_call: {
        const CompiledFunction* callee =
            &program_.functions[static_cast<uint32_t>(instr.a)];
        frames_.push_back(
            {current, static_cast<uint32_t>(ip - code), base});
        if (frames_.size() > frame_limit) {
            return resource_exhausted_error("call stack overflow");
        }
        if constexpr (mode == ValueMode::kUnboxed) {
            base = static_cast<uint32_t>(sp) - callee->num_params;
            size_t needed = base + callee->num_locals;
            if (needed > stack_cap) {
                return resource_exhausted_error(
                    "value stack overflow");
            }
            while (sp < needed) stack[sp++] = 0;
        } else {
            base = static_cast<uint32_t>(sp_) - callee->num_params;
            BITC_RETURN_IF_ERROR(reserve_locals(callee, base));
        }
        fn = callee;
        current = static_cast<uint32_t>(instr.a);
        code = fn->code.data();
        ip = code;
        BITC_DISPATCH();
    }
  lb_call_native: {
        if (natives_ == nullptr) {
            return internal_error("no native registry");
        }
        uint32_t argc = static_cast<uint32_t>(instr.b);
        native_args_.clear();
        if constexpr (mode == ValueMode::kUnboxed) {
            for (uint32_t i = argc; i > 0; --i) {
                native_args_.push_back(stack[sp - i]);
            }
        } else {
            for (uint32_t i = argc; i > 0; --i) {
                native_args_.push_back(
                    static_cast<uint64_t>(top_int(i - 1)));
            }
        }
        auto result = natives_->function(
            static_cast<uint32_t>(instr.a))(native_args_);
        if (!result.is_ok()) return result.status();
        if constexpr (mode == ValueMode::kUnboxed) {
            sp -= argc;
            BITC_PUSH(result.value());
        } else {
            drop(argc);
            BITC_RETURN_IF_ERROR(
                push_int(static_cast<int64_t>(result.value())));
        }
        BITC_DISPATCH();
    }
  lb_ret: {
        if constexpr (mode == ValueMode::kUnboxed) {
            if (base != sp - 1) {
                stack[base] = stack[sp - 1];
                sp = base + 1;
            }
            if (frames_.empty()) {
                return static_cast<int64_t>(stack[--sp]);
            }
        } else {
            if (base != sp_ - 1) {
                put(base, stack_[sp_ - 1]);
                shrink_to(base + 1);
            }
            if (frames_.empty()) {
                int64_t result = top_int(0);
                drop(1);
                return result;
            }
        }
        Frame f = frames_.back();
        frames_.pop_back();
        current = f.function;
        fn = &program_.functions[current];
        code = fn->code.data();
        ip = code + f.pc;
        base = f.base;
        BITC_DISPATCH();
    }
  lb_array_make: {
        if constexpr (mode == ValueMode::kUnboxed) {
            int64_t fill = static_cast<int64_t>(stack[sp - 1]);
            int64_t len = static_cast<int64_t>(stack[sp - 2]);
            if (len < 0 || len > kMaxArrayLen) {
                return runtime_error(
                    str_format("bad array length %lld",
                               static_cast<long long>(len)));
            }
            auto array = heap_.allocate(static_cast<uint32_t>(len), 0,
                                        kArrayTag);
            if (!array.is_ok()) return array.status();
            uint64_t* slots = heap_.slots(array.value());
            for (int64_t i = 0; i < len; ++i) {
                slots[i] = static_cast<uint64_t>(fill);
            }
            stack[sp - 2] = static_cast<uint64_t>(array.value());
            --sp;
        } else {
            int64_t fill = top_int(0);
            int64_t len = top_int(1);
            if (len < 0 || len > kMaxArrayLen) {
                return runtime_error(
                    str_format("bad array length %lld",
                               static_cast<long long>(len)));
            }
            BITC_RETURN_IF_ERROR(make_array(len, fill));
        }
        BITC_DISPATCH();
    }
  lb_array_get: {
        if constexpr (mode == ValueMode::kUnboxed) {
            int64_t idx = static_cast<int64_t>(stack[sp - 1]);
            ObjRef array = static_cast<ObjRef>(stack[sp - 2]);
            if (__builtin_expect(!heap_.is_live(array), 0)) {
                return runtime_error("invalid array reference");
            }
            BITC_BOUNDS(instr.b, idx, array);
            stack[sp - 2] = heap_.slots(array)[idx];
            --sp;
        } else {
            int64_t idx = top_int(0);
            BITC_ASSIGN_OR_RETURN(ObjRef array, array_at(1));
            BITC_RETURN_IF_ERROR(bounds_check(instr.b, idx, array));
            BITC_RETURN_IF_ERROR(array_get(array, idx));
        }
        BITC_DISPATCH();
    }
  lb_array_set: {
        if constexpr (mode == ValueMode::kUnboxed) {
            int64_t idx = static_cast<int64_t>(stack[sp - 2]);
            ObjRef array = static_cast<ObjRef>(stack[sp - 3]);
            if (__builtin_expect(!heap_.is_live(array), 0)) {
                return runtime_error("invalid array reference");
            }
            BITC_BOUNDS(instr.b, idx, array);
            heap_.slots(array)[idx] = stack[sp - 1];
            sp -= 3;
        } else {
            int64_t idx = top_int(1);
            BITC_ASSIGN_OR_RETURN(ObjRef array, array_at(2));
            BITC_RETURN_IF_ERROR(bounds_check(instr.b, idx, array));
            array_set(array, idx);
        }
        BITC_DISPATCH();
    }
  lb_array_len: {
        if constexpr (mode == ValueMode::kUnboxed) {
            ObjRef array = static_cast<ObjRef>(stack[sp - 1]);
            if (__builtin_expect(!heap_.is_live(array), 0)) {
                return runtime_error("invalid array reference");
            }
            stack[sp - 1] = heap_.num_slots(array);
        } else {
            BITC_ASSIGN_OR_RETURN(ObjRef array, array_at(0));
            int64_t len = heap_.num_slots(array);
            drop(1);
            BITC_RETURN_IF_ERROR(push_int(len));
        }
        BITC_DISPATCH();
    }
  lb_assert: {
        int64_t cond;
        if constexpr (mode == ValueMode::kUnboxed) {
            cond = static_cast<int64_t>(stack[--sp]);
        } else {
            cond = top_int(0);
            drop(1);
        }
        if (cond == 0) {
            return runtime_error("assertion failed");
        }
        BITC_DISPATCH();
    }
  lb_halt: {
        return internal_error("halt in function body");
    }
}

#undef BITC_COMPARE
#undef BITC_ARITH
#undef BITC_BOUNDS
#undef BITC_PUSH
#undef BITC_DISPATCH

#else  // !BITC_VM_COMPUTED_GOTO

template <ValueMode mode>
template <bool profiled>
Result<int64_t>
Machine<mode>::loop_threaded(uint32_t entry)
{
    return loop_switch<profiled>(entry);
}

#endif  // BITC_VM_COMPUTED_GOTO

}  // namespace

template <ValueMode mode>
Result<int64_t>
Vm::run(uint32_t function, std::span<const int64_t> args,
        std::span<int64_t> buffer)
{
    const bool collect_ops = config_.profile || config_.count_ops;
    Machine<mode> machine(program_, natives_, *heap_, config_,
                          instructions_,
                          collect_ops ? &profile_data_ : nullptr,
                          config_.profile);
    if (config_.max_instructions != 0) {
        machine.set_budget(instructions_ + config_.max_instructions);
    }
    // The telemetry bracket reads heap and opcode statistics before
    // and after the run and folds the deltas into the registry, so
    // the dispatch loops themselves never touch shared counters.
    if (!metrics::enabled() && !trace::enabled()) {
        return machine.execute(function, args, buffer);
    }
    mem::HeapStats heap_before = heap_->stats();
    uint64_t instr_before = instructions_;
    std::array<uint64_t, kNumOps> ops_before{};
    if (collect_ops) ops_before = profile_data_.counts;
    trace::emit(trace::Event::kVmEnter, function);
    uint64_t start_ns = now_ns();
    auto result = machine.execute(function, args, buffer);
    uint64_t run_ns = now_ns() - start_ns;
    uint64_t retired = instructions_ - instr_before;
    trace::emit(trace::Event::kVmExit, retired, run_ns);
    metrics::count(metrics::Counter::kVmRuns);
    metrics::count(metrics::Counter::kVmInstructions, retired);
    metrics::observe(metrics::Histogram::kVmRunNs, run_ns);
    if (collect_ops && metrics::enabled()) {
        for (size_t op = 0; op < kNumOps; ++op) {
            uint64_t delta = profile_data_.counts[op] - ops_before[op];
            if (delta != 0) metrics::count_opcode(op, delta);
        }
    }
    mem::fold_heap_telemetry(heap_before, heap_->stats());
    return result;
}

Result<int64_t>
Vm::call(const std::string& name, std::span<const int64_t> args)
{
    BITC_RETURN_IF_ERROR(validate());
    BITC_ASSIGN_OR_RETURN(uint32_t index, program_.find(name));
    if (config_.mode == ValueMode::kBoxed) {
        return run<ValueMode::kBoxed>(index, args, {});
    }
    return run<ValueMode::kUnboxed>(index, args, {});
}

Result<int64_t>
Vm::call_with_buffer(const std::string& name, std::span<int64_t> buffer,
                     std::span<const int64_t> extra_args)
{
    BITC_RETURN_IF_ERROR(validate());
    if (buffer.empty()) {
        return invalid_argument_error("buffer must be non-empty");
    }
    BITC_ASSIGN_OR_RETURN(uint32_t index, program_.find(name));
    if (config_.mode == ValueMode::kBoxed) {
        return run<ValueMode::kBoxed>(index, extra_args, buffer);
    }
    return run<ValueMode::kUnboxed>(index, extra_args, buffer);
}

}  // namespace bitc::vm
