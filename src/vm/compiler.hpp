/**
 * @file
 * Bytecode compiler: typed AST -> CompiledProgram.
 *
 * The optimisation switches are the levers of the F3 experiment:
 *
 *  - constant folding (classic strength-free fold over literals);
 *  - bounds-check elimination, licensed exclusively by the verifier's
 *    proof report (C1 feeding the optimiser) — never by heuristics;
 *  - assert elision for statically proved assertions.
 */
#ifndef BITC_VM_COMPILER_HPP
#define BITC_VM_COMPILER_HPP

#include "types/checker.hpp"
#include "verify/verifier.hpp"
#include "vm/bytecode.hpp"
#include "vm/native.hpp"

namespace bitc::vm {

/** Compilation switches. */
struct CompilerOptions {
    /** Fold constant subexpressions at compile time. */
    bool constant_fold = true;
    /**
     * Drop bounds checks / asserts the verifier proved.  Requires
     * @ref proofs; without it every check is kept.
     */
    bool elide_proved_checks = false;
    const verify::VerifyReport* proofs = nullptr;
    /** Native registry for (native "name" ...) calls; may be null. */
    const NativeRegistry* natives = nullptr;
};

/** Compiles a checked program. */
Result<CompiledProgram> compile_program(types::TypedProgram& program,
                                        const CompilerOptions& options);

}  // namespace bitc::vm

#endif  // BITC_VM_COMPILER_HPP
