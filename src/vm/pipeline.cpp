#include "vm/pipeline.hpp"

#include "lang/parser.hpp"
#include "lang/resolver.hpp"

namespace bitc::vm {

Result<std::unique_ptr<BuiltProgram>>
build_program(std::string_view source, BuildOptions options)
{
    DiagnosticEngine diags;
    BITC_ASSIGN_OR_RETURN(lang::Program parsed,
                          lang::parse_program(source, diags));
    BITC_RETURN_IF_ERROR(lang::resolve_program(parsed, diags));
    BITC_ASSIGN_OR_RETURN(
        types::TypedProgram typed,
        types::check_program(std::move(parsed), diags));

    auto built = std::make_unique<BuiltProgram>();
    built->typed = std::move(typed);
    if (options.verify) {
        built->verification =
            verify::verify_program(built->typed, options.solver);
        if (options.compiler.proofs == nullptr) {
            options.compiler.proofs = &built->verification;
        }
    }
    BITC_ASSIGN_OR_RETURN(
        built->code,
        compile_program(built->typed, options.compiler));
    return built;
}

Result<int64_t>
run_built(const BuiltProgram& built, const std::string& entry,
          std::span<const int64_t> args, VmConfig config,
          const NativeRegistry* natives, RunReport* report)
{
    Vm vm(built.code, natives, config);
    auto result = vm.call(entry, args);
    if (report != nullptr) {
        report->instructions = vm.instructions_executed();
        report->heap = vm.heap().stats();
        report->profile = vm.profile();
    }
    return result;
}

}  // namespace bitc::vm
