/**
 * @file
 * Stack bytecode for the BitC-like VM.
 *
 * The instruction set is deliberately transparent (one op, one obvious
 * machine action) because fallacy F3 is about predictability: the
 * experiment needs a cost model a systems programmer can reason about.
 */
#ifndef BITC_VM_BYTECODE_HPP
#define BITC_VM_BYTECODE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace bitc::vm {

enum class Op : uint8_t {
    kConst,      ///< push immediate (a = low 32 bits, b = high 32 bits)
    kUnit,       ///< push unit/0
    kPop,        ///< drop top of stack
    kLocalGet,   ///< push locals[a]
    kLocalSet,   ///< locals[a] = pop
    // Arithmetic (b bit0: signed). Operands popped right-then-left.
    kAdd, kSub, kMul, kDiv, kRem, kNeg,
    kShl, kShr, kBitAnd, kBitOr, kBitXor,
    // Comparisons (b bit0: signed); push 1/0.
    kLt, kLe, kGt, kGe, kEq, kNe,
    kNot,        ///< logical not of 0/1
    kWrap,       ///< wrap top to a-bit integer (b bit0: signed)
    kJump,       ///< pc = a
    kJumpIfFalse,///< pop; if 0, pc = a
    kCall,       ///< call function a (argc from callee signature)
    kCallNative, ///< call native function a (b = argc)
    kRet,        ///< return top of stack
    kArrayMake,  ///< pop fill, len; push new array ref
    kArrayGet,   ///< pop idx, array; push elem.
                 ///< b bit1: check lower bound, bit2: check upper.
    kArraySet,   ///< pop value, idx, array; push nothing
    kArrayLen,   ///< pop array; push length
    kAssert,     ///< pop; trap if 0
    kHalt,       ///< stop (end of entry frame)
};

/** Number of opcodes (kHalt is last); sizes dispatch/profile tables. */
inline constexpr size_t kNumOps = static_cast<size_t>(Op::kHalt) + 1;

const char* op_name(Op op);

/** Signedness flag in the b operand of arithmetic/compare ops. */
inline constexpr int32_t kFlagSigned = 1 << 0;
/** Bounds-check flags in the b operand of array ops. */
inline constexpr int32_t kFlagCheckLower = 1 << 1;
inline constexpr int32_t kFlagCheckUpper = 1 << 2;

/** One instruction; fixed width for cheap dispatch. */
struct Instr {
    Op op = Op::kHalt;
    int32_t a = 0;
    int32_t b = 0;

    std::string to_string() const;
};

/** A compiled function. */
struct CompiledFunction {
    std::string name;
    uint32_t num_params = 0;
    uint32_t num_locals = 0;  ///< including params
    std::vector<Instr> code;

    std::string disassemble() const;
};

/** A compiled program: functions plus entry lookup. */
struct CompiledProgram {
    std::vector<CompiledFunction> functions;

    /** Index of @p name, or error. */
    Result<uint32_t> find(const std::string& name) const;

    std::string disassemble() const;

    /** Static instruction counts per op (transparency reports). */
    std::vector<std::pair<std::string, size_t>> op_histogram() const;
};

}  // namespace bitc::vm

#endif  // BITC_VM_BYTECODE_HPP
