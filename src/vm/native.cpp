#include "vm/native.hpp"

#include "support/string_util.hpp"

namespace bitc::vm {

Status
NativeRegistry::add(const std::string& name, uint32_t arity, NativeFn fn)
{
    for (const Entry& e : entries_) {
        if (e.name == name) {
            return already_exists_error(
                str_format("native '%s' already registered",
                           name.c_str()));
        }
    }
    entries_.push_back({name, arity, std::move(fn)});
    return Status::ok();
}

Result<uint32_t>
NativeRegistry::find(const std::string& name) const
{
    for (size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].name == name) {
            return static_cast<uint32_t>(i);
        }
    }
    return not_found_error(
        str_format("no native function '%s'", name.c_str()));
}

}  // namespace bitc::vm
