#include "memory/semispace_heap.hpp"

#include <cstring>
#include <vector>

#include "support/string_util.hpp"
#include "support/trace.hpp"

namespace bitc::mem {

Result<ObjRef>
SemispaceHeap::allocate_impl(uint32_t num_slots, uint32_t num_refs,
                             uint8_t tag)
{
    uint32_t words = object_words(num_slots);
    if (cursor_ + words > half_words_) {
        trace::emit(trace::Event::kAllocSlowPath, words);
        collect();
        if (cursor_ + words > half_words_) {
            return resource_exhausted_error(
                str_format("semispace exhausted (%zu live words)",
                           cursor_));
        }
    }
    size_t offset = from_base_ + cursor_;
    cursor_ += words;
    ObjRef ref = bind_handle(offset, num_slots, num_refs, tag);
    account_alloc(words);
    return ref;
}

void
SemispaceHeap::collect()
{
    // Injected fault: deny the evacuation; the caller's retry fails
    // with clean exhaustion and the from-space stays intact.
    if (fault::inject(fault::Site::kGcTrigger)) return;
    GcPauseScope pause(*this, GcPauseScope::Kind::kMajor);
    ++stats_.collections;

    std::vector<bool> copied(table_.size(), false);
    std::vector<ObjRef> worklist;
    size_t to_cursor = 0;

    auto evacuate = [&](ObjRef ref) {
        if (ref == kNullRef || copied[ref]) return;
        copied[ref] = true;
        uint32_t words = object_words(num_slots(ref));
        assert(to_cursor + words <= half_words_);
        std::memcpy(storage_.get() + to_base_ + to_cursor,
                    storage_.get() + table_[ref],
                    words * sizeof(uint64_t));
        table_[ref] = static_cast<uint32_t>(to_base_ + to_cursor);
        to_cursor += words;
        worklist.push_back(ref);
    };

    for (ObjRef* root : roots_) evacuate(*root);
    while (!worklist.empty()) {
        ObjRef cur = worklist.back();
        worklist.pop_back();
        uint32_t refs = num_refs(cur);
        for (uint32_t i = 0; i < refs; ++i) {
            evacuate(load_ref(cur, i));
        }
    }

    // Anything not copied is garbage; its handle dies.
    for (ObjRef ref = 1; ref < table_.size(); ++ref) {
        if (table_[ref] == kFreeEntry || copied[ref]) continue;
        account_free(object_words(num_slots(ref)));
        release_handle(ref);
    }

    std::swap(from_base_, to_base_);
    cursor_ = to_cursor;
}

Status
SemispaceHeap::check_integrity() const
{
    BITC_RETURN_IF_ERROR(check_common());
    // Every live object sits wholly inside the active semispace.
    for (ObjRef ref = 1; ref < table_.size(); ++ref) {
        if (table_[ref] == kFreeEntry) continue;
        size_t offset = table_[ref];
        size_t words = object_words(num_slots(ref));
        if (offset < from_base_ ||
            offset + words > from_base_ + cursor_) {
            return internal_error(str_format(
                "object %u at %zu is outside the active semispace "
                "[%zu, %zu)",
                ref, offset, from_base_, from_base_ + cursor_));
        }
    }
    if (stats_.words_in_use > cursor_) {
        return internal_error(
            "semispace accounting exceeds the bump cursor");
    }
    return Status::ok();
}

}  // namespace bitc::mem
