#include "memory/marksweep_heap.hpp"

#include "support/string_util.hpp"
#include "support/trace.hpp"

namespace bitc::mem {

Result<ObjRef>
MarkSweepHeap::allocate_impl(uint32_t num_slots, uint32_t num_refs,
                             uint8_t tag)
{
    size_t words = FreeListSpace::round_up(object_words(num_slots));
    if (stats_.words_in_use + words > trigger_words_ &&
        allocated_since_gc_ >= heap_words_ / 8) {
        collect();
    }
    uint32_t offset = space_.allocate(words);
    if (offset == FreeListSpace::kNoBlock) {
        trace::emit(trace::Event::kAllocSlowPath, words);
        collect();
        offset = space_.allocate(words);
        if (offset == FreeListSpace::kNoBlock) {
            return resource_exhausted_error(
                str_format("mark-sweep heap exhausted (%zu words)", words));
        }
    }
    ObjRef ref = bind_handle(offset, num_slots, num_refs, tag);
    account_alloc(static_cast<uint32_t>(words));
    allocated_since_gc_ += words;
    return ref;
}

void
MarkSweepHeap::mark_from_roots(std::vector<bool>& marked) const
{
    std::vector<ObjRef> worklist;
    for (ObjRef* root : roots_) {
        if (*root != kNullRef && !marked[*root]) {
            marked[*root] = true;
            worklist.push_back(*root);
        }
    }
    while (!worklist.empty()) {
        ObjRef cur = worklist.back();
        worklist.pop_back();
        uint32_t refs = num_refs(cur);
        for (uint32_t i = 0; i < refs; ++i) {
            ObjRef child = load_ref(cur, i);
            if (child != kNullRef && !marked[child]) {
                marked[child] = true;
                worklist.push_back(child);
            }
        }
    }
}

void
MarkSweepHeap::collect()
{
    // Injected fault: the collection is denied, so a caller retrying
    // an allocation sees clean exhaustion instead of reclaimed room.
    if (fault::inject(fault::Site::kGcTrigger)) return;
    GcPauseScope pause(*this, GcPauseScope::Kind::kMajor);
    ++stats_.collections;
    allocated_since_gc_ = 0;

    std::vector<bool> marked(table_.size(), false);
    mark_from_roots(marked);

    for (ObjRef ref = 1; ref < table_.size(); ++ref) {
        if (table_[ref] == kFreeEntry || marked[ref]) continue;
        size_t words =
            FreeListSpace::round_up(object_words(num_slots(ref)));
        uint32_t offset = table_[ref];
        release_handle(ref);
        space_.free_block(offset, words);
        account_free(static_cast<uint32_t>(words));
    }
}

Status
MarkSweepHeap::check_integrity() const
{
    BITC_RETURN_IF_ERROR(check_common());
    return space_.check_integrity();
}

}  // namespace bitc::mem
