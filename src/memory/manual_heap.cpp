#include "memory/manual_heap.hpp"

#include "support/string_util.hpp"

namespace bitc::mem {

Result<ObjRef>
ManualHeap::allocate(uint32_t num_slots, uint32_t num_refs, uint8_t tag)
{
    size_t words = FreeListSpace::round_up(object_words(num_slots));
    uint32_t offset = space_.allocate(words);
    if (offset == FreeListSpace::kNoBlock) {
        return resource_exhausted_error(
            str_format("manual heap exhausted (%zu words requested)",
                       words));
    }
    ObjRef ref = bind_handle(offset, num_slots, num_refs, tag);
    account_alloc(static_cast<uint32_t>(words));
    return ref;
}

void
ManualHeap::free_object(ObjRef ref)
{
    assert(is_live(ref));
    size_t words = FreeListSpace::round_up(object_words(num_slots(ref)));
    uint32_t offset = table_[ref];
    release_handle(ref);
    space_.free_block(offset, words);
    account_free(static_cast<uint32_t>(words));
}

}  // namespace bitc::mem
