#include "memory/manual_heap.hpp"

#include "support/string_util.hpp"
#include "support/trace.hpp"

namespace bitc::mem {

Result<ObjRef>
ManualHeap::allocate_impl(uint32_t num_slots, uint32_t num_refs,
                          uint8_t tag)
{
    size_t words = FreeListSpace::round_up(block_words(num_slots));
    uint32_t offset = space_.allocate(words);
    if (offset == FreeListSpace::kNoBlock) {
        trace::emit(trace::Event::kAllocSlowPath, words);
        return resource_exhausted_error(
            str_format("manual heap exhausted (%zu words requested)",
                       words));
    }
    ObjRef ref = bind_handle(offset, num_slots, num_refs, tag);
    if (hardened_) {
        storage_[offset + object_words(num_slots)] =
            canary_for(offset);
    }
    account_alloc(static_cast<uint32_t>(words));
    return ref;
}

void
ManualHeap::free_object(ObjRef ref)
{
    assert(is_live(ref));
    size_t words =
        FreeListSpace::round_up(block_words(num_slots(ref)));
    uint32_t offset = table_[ref];
    if (hardened_) {
        // A dead canary at free time means the object overran its
        // payload while live; better to fail the next integrity probe
        // than to silently recycle the block, so leave it unpoisoned.
        assert(storage_[offset + object_words(num_slots(ref))] ==
               canary_for(offset));
    }
    release_handle(ref);
    space_.free_block(offset, words);
    account_free(static_cast<uint32_t>(words));
}

Status
ManualHeap::check_integrity() const
{
    BITC_RETURN_IF_ERROR(check_common());
    BITC_RETURN_IF_ERROR(space_.check_integrity());
    if (hardened_) {
        for (ObjRef ref = 1; ref < table_.size(); ++ref) {
            if (table_[ref] == kFreeEntry) continue;
            size_t offset = table_[ref];
            size_t guard = offset + object_words(num_slots(ref));
            if (storage_[guard] != canary_for(offset)) {
                return internal_error(str_format(
                    "object %u guard canary clobbered (overrun past "
                    "%u slots)",
                    ref, num_slots(ref)));
            }
        }
    }
    return Status::ok();
}

}  // namespace bitc::mem
