/**
 * @file
 * Segregated-fit free-list space: the word-range allocator underneath
 * the manual, reference-counting, mark–sweep and generational (old
 * generation) heaps.  This is the malloc-style machinery whose idioms
 * the paper says a systems language must let programmers keep (C2).
 */
#ifndef BITC_MEMORY_FREELIST_SPACE_HPP
#define BITC_MEMORY_FREELIST_SPACE_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/status.hpp"

namespace bitc::mem {

/**
 * Allocates word ranges out of a fixed segment of a heap's storage.
 *
 * Free blocks are chained through their own storage (word 0 = next
 * offset, word 1 = block size), so the allocator needs no side memory
 * proportional to the free set.  Sizes 2..kMaxExact words get exact
 * size classes; larger blocks live on a first-fit list.
 */
class FreeListSpace {
  public:
    static constexpr size_t kMinBlockWords = 2;
    static constexpr size_t kMaxExact = 64;
    static constexpr uint32_t kNoBlock = 0xffffffffu;
    /** Pattern written over freed payload words when poisoning is on. */
    static constexpr uint64_t kPoison = 0xdeadbeefcafef00dull;

    /**
     * @param storage Backing array shared with the owning heap.
     * @param begin   First word offset this space may hand out.
     * @param end     One past the last word offset.
     */
    FreeListSpace(uint64_t* storage, size_t begin, size_t end);

    /**
     * Allocates @p words (rounded up to kMinBlockWords).
     * Returns the word offset, or kNoBlock when no room is found.
     */
    uint32_t allocate(size_t words);

    /** Returns the block at @p offset, @p words long, to the free set. */
    void free_block(uint32_t offset, size_t words);

    /** Drops all free lists and resets the bump cursor to begin. */
    void reset();

    /**
     * Debug hardening: when on, every word of a freed block beyond the
     * two link words is overwritten with kPoison, and check_integrity
     * verifies the poison is intact — so a write through a stale
     * pointer into freed storage is detected instead of silently
     * corrupting whatever reuses the block.
     */
    void set_poison(bool on) { poison_ = on; }
    bool poison() const { return poison_; }

    /**
     * Walks every free list and verifies: offsets inside the carved
     * range, sizes sane for their class, no cycles, the size ledger
     * matching free_list_words(), and (when poisoning is on) freed
     * payloads unmodified.  Returns the first violation as kInternal.
     */
    Status check_integrity() const;

    /** Words not currently handed out (free lists + wilderness). */
    size_t free_words() const { return free_list_words_ + wilderness_words(); }
    /** Untouched tail not yet carved into blocks. */
    size_t wilderness_words() const { return end_ - cursor_; }
    size_t capacity_words() const { return end_ - begin_; }

    /** Rounds a request up to an allocatable block size. */
    static size_t round_up(size_t words) {
        return words < kMinBlockWords ? kMinBlockWords : words;
    }

  private:
    size_t class_index(size_t words) const;
    uint32_t pop_block(size_t cls);
    void push_block(uint32_t offset, size_t words);
    uint32_t carve(size_t words);
    uint32_t split_search(size_t words);

    uint64_t* storage_;
    size_t begin_;
    size_t end_;
    size_t cursor_;
    size_t free_list_words_ = 0;
    bool poison_ = false;
    // heads[i] for exact class size i+kMinBlockWords; last entry = large.
    std::array<uint32_t, kMaxExact - kMinBlockWords + 2> heads_;
};

}  // namespace bitc::mem

#endif  // BITC_MEMORY_FREELIST_SPACE_HPP
