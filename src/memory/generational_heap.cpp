#include "memory/generational_heap.hpp"

#include <cstring>

#include "support/string_util.hpp"
#include "support/trace.hpp"

namespace bitc::mem {

namespace {

bool
flag_set(const uint64_t* words, uint8_t flag)
{
    return (ObjHeader::flags(words[0]) & flag) != 0;
}

void
set_flag(uint64_t* words, uint8_t flag)
{
    words[0] = ObjHeader::with_flags(
        words[0], static_cast<uint8_t>(ObjHeader::flags(words[0]) | flag));
}

void
clear_flag(uint64_t* words, uint8_t flag)
{
    words[0] = ObjHeader::with_flags(
        words[0],
        static_cast<uint8_t>(ObjHeader::flags(words[0]) & ~flag));
}

}  // namespace

Result<ObjRef>
GenerationalHeap::allocate_impl(uint32_t num_slots, uint32_t num_refs,
                                uint8_t tag)
{
    uint32_t words = object_words(num_slots);

    // Oversized objects skip the nursery entirely (pretenuring).
    if (words > nursery_words_ / 4) {
        uint32_t offset =
            old_space_.allocate(FreeListSpace::round_up(words));
        if (offset == FreeListSpace::kNoBlock) {
            trace::emit(trace::Event::kAllocSlowPath, words);
            collect();
            offset = old_space_.allocate(FreeListSpace::round_up(words));
            if (offset == FreeListSpace::kNoBlock) {
                return resource_exhausted_error(
                    str_format("old generation exhausted (%u words)",
                               words));
            }
        }
        ObjRef ref = bind_handle(offset, num_slots, num_refs, tag);
        set_flag(obj_words(ref), kFlagTenured);
        account_alloc(
            static_cast<uint32_t>(FreeListSpace::round_up(words)));
        return ref;
    }

    if (nursery_cursor_ + words > nursery_words_) {
        trace::emit(trace::Event::kAllocSlowPath, words);
        BITC_RETURN_IF_ERROR(minor_collect());
        if (nursery_cursor_ + words > nursery_words_) {
            return resource_exhausted_error("nursery too small");
        }
    }
    size_t offset = nursery_cursor_;
    nursery_cursor_ += words;
    ObjRef ref = bind_handle(offset, num_slots, num_refs, tag);
    account_alloc(words);
    return ref;
}

void
GenerationalHeap::store_ref(ObjRef ref, uint32_t index, ObjRef target)
{
    ManagedHeap::store_ref(ref, index, target);
    // Barrier: record old->nursery edges so minor collections need not
    // scan the whole old generation.
    if (target != kNullRef && !in_nursery(ref) && in_nursery(target)) {
        uint64_t* w = obj_words(ref);
        if (!flag_set(w, kFlagRemembered)) {
            set_flag(w, kFlagRemembered);
            remembered_.push_back(ref);
            ++stats_.barrier_hits;
        }
    }
}

Status
GenerationalHeap::minor_collect()
{
    // Injected fault: the nursery cannot be evacuated; allocation
    // failure propagates as a Status without touching any object.
    if (fault::inject(fault::Site::kGcTrigger)) {
        return fault::injected_error(fault::Site::kGcTrigger);
    }
    GcPauseScope pause(*this, GcPauseScope::Kind::kMinor);
    ++stats_.minor_collections;

    // Guarantee promotion room: evacuating can move at most the words
    // currently in the nursery.
    if (old_space_.free_words() < nursery_cursor_) {
        std::vector<bool> marked(table_.size(), false);
        mark_all(marked);
        sweep_old(marked);
        ++stats_.collections;
    }
    return evacuate_nursery();
}

Status
GenerationalHeap::evacuate_nursery()
{
    std::vector<bool> promoted(table_.size(), false);
    std::vector<ObjRef> worklist;

    auto promote = [&](ObjRef ref) -> Status {
        if (ref == kNullRef || promoted[ref] || !in_nursery(ref)) {
            return Status::ok();
        }
        promoted[ref] = true;
        uint32_t words = object_words(num_slots(ref));
        uint32_t offset =
            old_space_.allocate(FreeListSpace::round_up(words));
        if (offset == FreeListSpace::kNoBlock) {
            return resource_exhausted_error(
                "old generation exhausted during promotion");
        }
        std::memcpy(storage_.get() + offset, storage_.get() + table_[ref],
                    words * sizeof(uint64_t));
        table_[ref] = offset;
        set_flag(obj_words(ref), kFlagTenured);
        // Promotion may round the block up; charge the slack.
        stats_.words_in_use +=
            FreeListSpace::round_up(words) - words;
        worklist.push_back(ref);
        return Status::ok();
    };

    for (ObjRef* root : roots_) BITC_RETURN_IF_ERROR(promote(*root));
    for (ObjRef old_obj : remembered_) {
        if (table_[old_obj] == kFreeEntry) continue;
        uint32_t refs = num_refs(old_obj);
        for (uint32_t i = 0; i < refs; ++i) {
            BITC_RETURN_IF_ERROR(promote(load_ref(old_obj, i)));
        }
        clear_flag(obj_words(old_obj), kFlagRemembered);
    }
    remembered_.clear();

    while (!worklist.empty()) {
        ObjRef cur = worklist.back();
        worklist.pop_back();
        uint32_t refs = num_refs(cur);
        for (uint32_t i = 0; i < refs; ++i) {
            BITC_RETURN_IF_ERROR(promote(load_ref(cur, i)));
        }
    }

    // Unpromoted nursery objects are dead.
    for (ObjRef ref = 1; ref < table_.size(); ++ref) {
        if (table_[ref] == kFreeEntry || !in_nursery(ref)) continue;
        account_free(object_words(num_slots(ref)));
        release_handle(ref);
    }
    nursery_cursor_ = 0;
    return Status::ok();
}

void
GenerationalHeap::mark_all(std::vector<bool>& marked) const
{
    std::vector<ObjRef> worklist;
    for (ObjRef* root : roots_) {
        if (*root != kNullRef && !marked[*root]) {
            marked[*root] = true;
            worklist.push_back(*root);
        }
    }
    while (!worklist.empty()) {
        ObjRef cur = worklist.back();
        worklist.pop_back();
        uint32_t refs = num_refs(cur);
        for (uint32_t i = 0; i < refs; ++i) {
            ObjRef child = load_ref(cur, i);
            if (child != kNullRef && !marked[child]) {
                marked[child] = true;
                worklist.push_back(child);
            }
        }
    }
}

void
GenerationalHeap::sweep_old(const std::vector<bool>& marked)
{
    for (ObjRef ref = 1; ref < table_.size(); ++ref) {
        if (table_[ref] == kFreeEntry || in_nursery(ref) || marked[ref]) {
            continue;
        }
        size_t words =
            FreeListSpace::round_up(object_words(num_slots(ref)));
        uint32_t offset = table_[ref];
        release_handle(ref);
        old_space_.free_block(offset, words);
        account_free(static_cast<uint32_t>(words));
    }
}

void
GenerationalHeap::collect()
{
    Status status = minor_collect();
    (void)status;  // Full collection below reclaims regardless.
    GcPauseScope pause(*this, GcPauseScope::Kind::kMajor);
    ++stats_.collections;
    std::vector<bool> marked(table_.size(), false);
    mark_all(marked);
    sweep_old(marked);
}

size_t
GenerationalHeap::occupied_words(ObjRef ref) const
{
    size_t words = object_words(num_slots(ref));
    return in_nursery(ref) ? words : FreeListSpace::round_up(words);
}

Status
GenerationalHeap::check_integrity() const
{
    BITC_RETURN_IF_ERROR(check_common());
    BITC_RETURN_IF_ERROR(old_space_.check_integrity());
    for (ObjRef ref = 1; ref < table_.size(); ++ref) {
        if (table_[ref] == kFreeEntry) continue;
        bool nursery = in_nursery(ref);
        bool tenured = flag_set(obj_words(ref), kFlagTenured);
        if (nursery == tenured) {
            return internal_error(str_format(
                "object %u tenure flag disagrees with its address "
                "(offset %u, nursery ends at %zu)",
                ref, table_[ref], nursery_words_));
        }
        if (nursery &&
            table_[ref] + object_words(num_slots(ref)) >
                nursery_cursor_) {
            return internal_error(str_format(
                "nursery object %u extends past the bump cursor %zu",
                ref, nursery_cursor_));
        }
    }
    for (ObjRef old_obj : remembered_) {
        if (table_[old_obj] == kFreeEntry) continue;
        if (in_nursery(old_obj)) {
            return internal_error(str_format(
                "remembered-set entry %u is a nursery object",
                old_obj));
        }
        if (!flag_set(obj_words(old_obj), kFlagRemembered)) {
            return internal_error(str_format(
                "remembered-set entry %u lost its remembered flag",
                old_obj));
        }
    }
    return Status::ok();
}

}  // namespace bitc::mem
