#include "memory/refcount_heap.hpp"

#include "support/string_util.hpp"
#include "support/trace.hpp"

namespace bitc::mem {

Result<ObjRef>
RefCountHeap::allocate_impl(uint32_t num_slots, uint32_t num_refs,
                            uint8_t tag)
{
    size_t words = FreeListSpace::round_up(object_words(num_slots));
    uint32_t offset = space_.allocate(words);
    if (offset == FreeListSpace::kNoBlock) {
        // Cyclic garbage may be clogging the heap; trace, then retry.
        trace::emit(trace::Event::kAllocSlowPath, words);
        collect();
        offset = space_.allocate(words);
        if (offset == FreeListSpace::kNoBlock) {
            return resource_exhausted_error(
                str_format("refcount heap exhausted (%zu words)", words));
        }
    }
    ObjRef ref = bind_handle(offset, num_slots, num_refs, tag);
    if (counts_.size() <= ref) counts_.resize(ref + 1, 0);
    counts_[ref] = 0;  // unreferenced until stored or rooted
    account_alloc(static_cast<uint32_t>(words));
    return ref;
}

void
RefCountHeap::increment(ObjRef ref)
{
    if (ref == kNullRef) return;
    ++counts_[ref];
}

void
RefCountHeap::decrement(ObjRef ref)
{
    if (ref == kNullRef) return;
    // Iterative transitive release: recursion on a long list would
    // otherwise overflow the C++ stack (a classic RC implementation bug).
    dec_worklist_.push_back(ref);
    while (!dec_worklist_.empty()) {
        ObjRef cur = dec_worklist_.back();
        dec_worklist_.pop_back();
        assert(counts_[cur] > 0);
        if (--counts_[cur] != 0) continue;
        uint32_t refs = num_refs(cur);
        for (uint32_t i = 0; i < refs; ++i) {
            ObjRef child = load_ref(cur, i);
            if (child != kNullRef) dec_worklist_.push_back(child);
        }
        reclaim(cur);
    }
}

void
RefCountHeap::reclaim(ObjRef ref)
{
    size_t words = FreeListSpace::round_up(object_words(num_slots(ref)));
    uint32_t offset = table_[ref];
    release_handle(ref);
    space_.free_block(offset, words);
    account_free(static_cast<uint32_t>(words));
}

void
RefCountHeap::store_ref(ObjRef ref, uint32_t index, ObjRef target)
{
    ObjRef old = load_ref(ref, index);
    if (old == target) return;
    ++stats_.barrier_hits;
    increment(target);
    ManagedHeap::store_ref(ref, index, target);
    decrement(old);
}

void
RefCountHeap::add_root(ObjRef* root)
{
    ManagedHeap::add_root(root);
    increment(*root);
}

void
RefCountHeap::remove_root(ObjRef* root)
{
    ObjRef value = *root;
    ManagedHeap::remove_root(root);
    decrement(value);
}

void
RefCountHeap::root_assign(ObjRef* root, ObjRef value)
{
    ObjRef old = *root;
    if (old == value) return;
    increment(value);
    *root = value;
    decrement(old);
}

void
RefCountHeap::collect()
{
    // An injected fault here models "the backup tracer could not run";
    // the caller's retry allocation then fails cleanly.
    if (fault::inject(fault::Site::kGcTrigger)) return;
    GcPauseScope pause(*this, GcPauseScope::Kind::kMajor);
    ++stats_.collections;

    // Mark phase from the roots.
    std::vector<bool> marked(table_.size(), false);
    std::vector<ObjRef> worklist;
    for (ObjRef* root : roots_) {
        if (*root != kNullRef && !marked[*root]) {
            marked[*root] = true;
            worklist.push_back(*root);
        }
    }
    while (!worklist.empty()) {
        ObjRef cur = worklist.back();
        worklist.pop_back();
        uint32_t refs = num_refs(cur);
        for (uint32_t i = 0; i < refs; ++i) {
            ObjRef child = load_ref(cur, i);
            if (child != kNullRef && !marked[child]) {
                marked[child] = true;
                worklist.push_back(child);
            }
        }
    }

    // Sweep: free unmarked (cyclic) garbage directly, bypassing counts.
    for (ObjRef ref = 1; ref < table_.size(); ++ref) {
        if (table_[ref] == kFreeEntry || marked[ref]) continue;
        reclaim(ref);
    }

    // Counts of survivors may reference freed cycle members; recompute
    // from scratch so the invariant (count == in-edges + root-edges)
    // holds again.
    for (ObjRef ref = 1; ref < table_.size(); ++ref) {
        if (table_[ref] != kFreeEntry) counts_[ref] = 0;
    }
    for (ObjRef* root : roots_) {
        if (*root != kNullRef) ++counts_[*root];
    }
    for (ObjRef ref = 1; ref < table_.size(); ++ref) {
        if (table_[ref] == kFreeEntry) continue;
        uint32_t refs = num_refs(ref);
        for (uint32_t i = 0; i < refs; ++i) {
            ObjRef child = load_ref(ref, i);
            if (child != kNullRef) ++counts_[child];
        }
    }
}

Status
RefCountHeap::check_integrity() const
{
    BITC_RETURN_IF_ERROR(check_common());
    BITC_RETURN_IF_ERROR(space_.check_integrity());
    // Recompute every count from scratch (root edges + heap in-edges)
    // and demand exact agreement with the maintained counts.
    std::vector<uint32_t> expected(table_.size(), 0);
    for (ObjRef* root : roots_) {
        if (*root != kNullRef) ++expected[*root];
    }
    for (ObjRef ref = 1; ref < table_.size(); ++ref) {
        if (table_[ref] == kFreeEntry) continue;
        uint32_t refs = num_refs(ref);
        for (uint32_t i = 0; i < refs; ++i) {
            ObjRef child = load_ref(ref, i);
            if (child != kNullRef) ++expected[child];
        }
    }
    for (ObjRef ref = 1; ref < table_.size(); ++ref) {
        if (table_[ref] == kFreeEntry) continue;
        if (counts_[ref] != expected[ref]) {
            return internal_error(str_format(
                "object %u refcount drifted: %u maintained, %u "
                "recomputed",
                ref, counts_[ref], expected[ref]));
        }
    }
    return Status::ok();
}

}  // namespace bitc::mem
