/**
 * @file
 * Mark–compact collector: bump allocation, stop-the-world sliding
 * compaction.  Completes the classic-collector taxonomy (Wilson's
 * survey, which the paper's era relied on): unlike mark–sweep it never
 * fragments and keeps allocation a pure bump, at the price of moving
 * every live object during collection — the longest pauses in the C2
 * matrix, traded for the tightest post-collection locality.
 */
#ifndef BITC_MEMORY_MARKCOMPACT_HEAP_HPP
#define BITC_MEMORY_MARKCOMPACT_HEAP_HPP

#include <vector>

#include "memory/heap.hpp"

namespace bitc::mem {

/**
 * Sliding mark–compact heap.  Handles make the slide trivial to apply
 * (only the table is rewritten), but the full live set is still copied
 * within storage, preserving address order.
 */
class MarkCompactHeap : public ManagedHeap {
  public:
    explicit MarkCompactHeap(size_t heap_words)
        : ManagedHeap(heap_words) {}

    const char* name() const override { return "mark-compact"; }

    void collect() override;

    /** Words between the compaction cursor and the end of storage. */
    size_t free_words() const { return heap_words_ - cursor_; }

    Status check_integrity() const override;

  protected:
    Result<ObjRef> allocate_impl(uint32_t num_slots, uint32_t num_refs,
                                 uint8_t tag) override;

  private:
    size_t cursor_ = 0;
};

}  // namespace bitc::mem

#endif  // BITC_MEMORY_MARKCOMPACT_HEAP_HPP
