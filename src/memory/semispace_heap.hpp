/**
 * @file
 * Semispace copying collector (Cheney-style liveness, handle-table
 * relocation).  Fast bump allocation and perfect compaction, at the
 * cost of halving usable capacity — the classic throughput/footprint
 * trade-off in the C2 experiment.
 */
#ifndef BITC_MEMORY_SEMISPACE_HEAP_HPP
#define BITC_MEMORY_SEMISPACE_HEAP_HPP

#include "memory/heap.hpp"

namespace bitc::mem {

/**
 * Two-space copying heap.  Objects allocate by bump in the active
 * semispace; collection copies the reachable set into the idle space
 * and flips.  Because mutators hold handle ids, relocation only
 * rewrites the handle table — reference slots never change.
 */
class SemispaceHeap : public ManagedHeap {
  public:
    explicit SemispaceHeap(size_t heap_words)
        : ManagedHeap(heap_words),
          half_words_(heap_words / 2),
          from_base_(0),
          to_base_(heap_words / 2) {}

    const char* name() const override { return "semispace"; }

    void collect() override;

    /** Usable capacity (one semispace). */
    size_t semispace_words() const { return half_words_; }

    Status check_integrity() const override;

  protected:
    Result<ObjRef> allocate_impl(uint32_t num_slots, uint32_t num_refs,
                                 uint8_t tag) override;

  private:
    size_t half_words_;
    size_t from_base_;  ///< Base offset of the active (allocation) space.
    size_t to_base_;    ///< Base offset of the idle space.
    size_t cursor_ = 0; ///< Bump offset relative to from_base_.
};

}  // namespace bitc::mem

#endif  // BITC_MEMORY_SEMISPACE_HEAP_HPP
