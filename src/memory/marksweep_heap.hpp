/**
 * @file
 * Stop-the-world mark–sweep collector over a segregated-fit space.
 * The classic tracing GC of Wilson's survey; the C2 experiment's
 * representative of "perceived high overhead, unpredictable timing".
 */
#ifndef BITC_MEMORY_MARKSWEEP_HEAP_HPP
#define BITC_MEMORY_MARKSWEEP_HEAP_HPP

#include <vector>

#include "memory/freelist_space.hpp"
#include "memory/heap.hpp"

namespace bitc::mem {

/**
 * Mark–sweep heap. Collection is triggered by allocation failure or an
 * occupancy threshold; the mutator never frees.
 */
class MarkSweepHeap : public ManagedHeap {
  public:
    /**
     * @param heap_words      Storage capacity.
     * @param trigger_ratio   Collect when words_in_use exceeds this
     *                        fraction of capacity at an allocation.
     */
    explicit MarkSweepHeap(size_t heap_words, double trigger_ratio = 0.75)
        : ManagedHeap(heap_words),
          space_(storage_.get(), 0, heap_words),
          trigger_words_(static_cast<size_t>(
              static_cast<double>(heap_words) * trigger_ratio)) {}

    const char* name() const override { return "mark-sweep"; }

    void collect() override;

    Status check_integrity() const override;

  protected:
    Result<ObjRef> allocate_impl(uint32_t num_slots, uint32_t num_refs,
                                 uint8_t tag) override;

    size_t occupied_words(ObjRef ref) const override {
        return FreeListSpace::round_up(object_words(num_slots(ref)));
    }

  private:
    void mark_from_roots(std::vector<bool>& marked) const;

    FreeListSpace space_;
    size_t trigger_words_;
    // Words allocated since the last collection; paces the trigger so a
    // large live set does not degenerate into a collection per allocation.
    size_t allocated_since_gc_ = 0;
};

}  // namespace bitc::mem

#endif  // BITC_MEMORY_MARKSWEEP_HEAP_HPP
