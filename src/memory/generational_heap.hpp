/**
 * @file
 * Two-generation collector: bump-allocated nursery evacuated into a
 * mark–sweep old generation, with a card-less remembered set maintained
 * by the reference-store write barrier.  The "modern, lower overhead,
 * more predictable" GC configuration the lecture material credits with
 * making automatic management acceptable — and whose barrier cost the
 * C2 experiment quantifies.
 */
#ifndef BITC_MEMORY_GENERATIONAL_HEAP_HPP
#define BITC_MEMORY_GENERATIONAL_HEAP_HPP

#include <vector>

#include "memory/freelist_space.hpp"
#include "memory/heap.hpp"

namespace bitc::mem {

/**
 * Generational heap.  Layout: [0, nursery_words) is the nursery bump
 * space; [nursery_words, heap_words) is the tenured free-list space.
 * Objects surviving one minor collection are promoted.
 */
class GenerationalHeap : public ManagedHeap {
  public:
    /**
     * @param heap_words    Total storage.
     * @param nursery_words Nursery size; must be < heap_words.
     */
    GenerationalHeap(size_t heap_words, size_t nursery_words)
        : ManagedHeap(heap_words),
          nursery_words_(nursery_words),
          old_space_(storage_.get(), nursery_words, heap_words) {
        assert(nursery_words < heap_words);
    }

    const char* name() const override { return "generational"; }

    /** Remembered-set write barrier (old -> nursery edges). */
    void store_ref(ObjRef ref, uint32_t index, ObjRef target) override;

    /** Full collection: evacuate nursery, then mark–sweep the old gen. */
    void collect() override;

    /** Nursery evacuation only. */
    Status minor_collect();

    bool in_nursery(ObjRef ref) const {
        return table_[ref] < nursery_words_;
    }

    size_t remembered_set_size() const { return remembered_.size(); }

    Status check_integrity() const override;

  protected:
    Result<ObjRef> allocate_impl(uint32_t num_slots, uint32_t num_refs,
                                 uint8_t tag) override;

    /** Tenured blocks are rounded to free-list sizes; nursery is bump. */
    size_t occupied_words(ObjRef ref) const override;

  private:
    Status evacuate_nursery();
    void sweep_old(const std::vector<bool>& marked);
    void mark_all(std::vector<bool>& marked) const;

    size_t nursery_words_;
    size_t nursery_cursor_ = 0;
    FreeListSpace old_space_;
    std::vector<ObjRef> remembered_;  ///< Old objects with nursery edges.
};

}  // namespace bitc::mem

#endif  // BITC_MEMORY_GENERATIONAL_HEAP_HPP
