#include "memory/heap.hpp"

#include <algorithm>
#include <cstring>

namespace bitc::mem {

ManagedHeap::ManagedHeap(size_t heap_words)
    : storage_(std::make_unique<uint64_t[]>(heap_words)),
      heap_words_(heap_words)
{
    // Entry 0 is reserved so that ObjRef 0 can be the null reference.
    table_.push_back(kFreeEntry);
}

void
ManagedHeap::remove_root(ObjRef* root)
{
    // Roots are overwhelmingly removed LIFO (RAII LocalRoots, VM stack
    // teardown), so search from the back: O(1) on that path.
    auto it = std::find(roots_.rbegin(), roots_.rend(), root);
    assert(it != roots_.rend());
    *it = roots_.back();
    roots_.pop_back();
}

ObjRef
ManagedHeap::bind_handle(size_t word_offset, uint32_t num_slots,
                         uint32_t num_refs, uint8_t tag)
{
    assert(num_refs <= num_slots);
    ObjRef ref;
    if (!free_ids_.empty()) {
        ref = free_ids_.back();
        free_ids_.pop_back();
        table_[ref] = static_cast<uint32_t>(word_offset);
    } else {
        ref = static_cast<ObjRef>(table_.size());
        table_.push_back(static_cast<uint32_t>(word_offset));
    }
    uint64_t* w = storage_.get() + word_offset;
    w[0] = ObjHeader::pack(num_slots, num_refs, tag);
    std::memset(w + 1, 0, num_slots * sizeof(uint64_t));
    ++live_objects_;
    return ref;
}

void
ManagedHeap::release_handle(ObjRef ref)
{
    assert(is_live(ref));
    table_[ref] = kFreeEntry;
    free_ids_.push_back(ref);
    assert(live_objects_ > 0);
    --live_objects_;
}

void
ManagedHeap::account_alloc(uint32_t words)
{
    ++stats_.allocations;
    stats_.bytes_allocated += words * sizeof(uint64_t);
    stats_.words_in_use += words;
    stats_.peak_words_in_use =
        std::max(stats_.peak_words_in_use, stats_.words_in_use);
}

void
ManagedHeap::account_free(uint32_t words)
{
    ++stats_.frees;
    assert(stats_.words_in_use >= words);
    stats_.words_in_use -= words;
}

void
LocalRoot::set(ObjRef ref)
{
    heap_.root_assign(&ref_, ref);
}

}  // namespace bitc::mem
