#include "memory/heap.hpp"

#include <algorithm>
#include <cstring>

#include "support/string_util.hpp"
#include "support/trace.hpp"

namespace bitc::mem {

ManagedHeap::ManagedHeap(size_t heap_words)
    : storage_(std::make_unique<uint64_t[]>(heap_words)),
      heap_words_(heap_words)
{
    // Entry 0 is reserved so that ObjRef 0 can be the null reference.
    table_.push_back(kFreeEntry);
}

void
ManagedHeap::remove_root(ObjRef* root)
{
    // Roots are overwhelmingly removed LIFO (RAII LocalRoots, VM stack
    // teardown), so search from the back: O(1) on that path.
    auto it = std::find(roots_.rbegin(), roots_.rend(), root);
    assert(it != roots_.rend());
    *it = roots_.back();
    roots_.pop_back();
}

ObjRef
ManagedHeap::bind_handle(size_t word_offset, uint32_t num_slots,
                         uint32_t num_refs, uint8_t tag)
{
    assert(num_refs <= num_slots);
    ObjRef ref;
    if (!free_ids_.empty()) {
        ref = free_ids_.back();
        free_ids_.pop_back();
        table_[ref] = static_cast<uint32_t>(word_offset);
    } else {
        ref = static_cast<ObjRef>(table_.size());
        table_.push_back(static_cast<uint32_t>(word_offset));
    }
    uint64_t* w = storage_.get() + word_offset;
    w[0] = ObjHeader::pack(num_slots, num_refs, tag);
    std::memset(w + 1, 0, num_slots * sizeof(uint64_t));
    ++live_objects_;
    return ref;
}

void
ManagedHeap::release_handle(ObjRef ref)
{
    assert(is_live(ref));
    table_[ref] = kFreeEntry;
    free_ids_.push_back(ref);
    assert(live_objects_ > 0);
    --live_objects_;
}

void
ManagedHeap::account_alloc(uint32_t words)
{
    ++stats_.allocations;
    stats_.bytes_allocated += words * sizeof(uint64_t);
    stats_.words_in_use += words;
    stats_.peak_words_in_use =
        std::max(stats_.peak_words_in_use, stats_.words_in_use);
}

void
ManagedHeap::account_free(uint32_t words)
{
    ++stats_.frees;
    assert(stats_.words_in_use >= words);
    stats_.words_in_use -= words;
}

Result<uint64_t>
ManagedHeap::checked_load(ObjRef ref, uint32_t index) const
{
    if (!is_live(ref)) {
        return failed_precondition_error(str_format(
            "stale handle %u: object is not live", ref));
    }
    if (index >= num_slots(ref)) {
        return out_of_range_error(str_format(
            "slot %u out of range for object %u (%u slots)", index, ref,
            num_slots(ref)));
    }
    return load(ref, index);
}

Status
ManagedHeap::checked_store(ObjRef ref, uint32_t index, uint64_t value)
{
    if (!is_live(ref)) {
        return failed_precondition_error(str_format(
            "stale handle %u: object is not live", ref));
    }
    if (index >= num_slots(ref) || index < num_refs(ref)) {
        return out_of_range_error(str_format(
            "raw slot %u out of range for object %u (%u refs, %u "
            "slots)",
            index, ref, num_refs(ref), num_slots(ref)));
    }
    store(ref, index, value);
    return Status::ok();
}

Result<ObjRef>
ManagedHeap::checked_load_ref(ObjRef ref, uint32_t index) const
{
    if (!is_live(ref)) {
        return failed_precondition_error(str_format(
            "stale handle %u: object is not live", ref));
    }
    if (index >= num_refs(ref)) {
        return out_of_range_error(str_format(
            "ref slot %u out of range for object %u (%u refs)", index,
            ref, num_refs(ref)));
    }
    return load_ref(ref, index);
}

Status
ManagedHeap::checked_store_ref(ObjRef ref, uint32_t index, ObjRef target)
{
    if (!is_live(ref)) {
        return failed_precondition_error(str_format(
            "stale handle %u: object is not live", ref));
    }
    if (index >= num_refs(ref)) {
        return out_of_range_error(str_format(
            "ref slot %u out of range for object %u (%u refs)", index,
            ref, num_refs(ref)));
    }
    if (target != kNullRef && !is_live(target)) {
        return failed_precondition_error(str_format(
            "stale handle %u: store target is not live", target));
    }
    store_ref(ref, index, target);
    return Status::ok();
}

Status
ManagedHeap::check_common() const
{
    size_t live = 0;
    size_t occupied = 0;
    for (ObjRef ref = 1; ref < table_.size(); ++ref) {
        if (table_[ref] == kFreeEntry) continue;
        ++live;
        size_t offset = table_[ref];
        if (offset >= heap_words_) {
            return internal_error(str_format(
                "object %u offset %zu outside heap of %zu words", ref,
                offset, heap_words_));
        }
        const uint64_t* w = storage_.get() + offset;
        uint32_t slots = ObjHeader::num_slots(w[0]);
        uint32_t refs = ObjHeader::num_refs(w[0]);
        if (refs > slots) {
            return internal_error(str_format(
                "object %u header corrupt: %u refs > %u slots", ref,
                refs, slots));
        }
        if (offset + object_words(slots) > heap_words_) {
            return internal_error(str_format(
                "object %u (%u slots at %zu) overruns the heap", ref,
                slots, offset));
        }
        for (uint32_t i = 0; i < refs; ++i) {
            uint64_t child = w[1 + i];
            if (child > 0xffffffffull) {
                return internal_error(str_format(
                    "object %u ref slot %u holds a non-handle value",
                    ref, i));
            }
            if (refs_must_be_live() && child != kNullRef &&
                !is_live(static_cast<ObjRef>(child))) {
                return internal_error(str_format(
                    "object %u ref slot %u dangles (handle %llu dead)",
                    ref, i,
                    static_cast<unsigned long long>(child)));
            }
        }
        occupied += occupied_words(ref);
    }
    if (live != live_objects_) {
        return internal_error(str_format(
            "live-object count drifted: %zu in table, %zu recorded",
            live, live_objects_));
    }
    if (occupied != stats_.words_in_use) {
        return internal_error(str_format(
            "word accounting drifted: %zu occupied, %llu recorded",
            occupied,
            static_cast<unsigned long long>(stats_.words_in_use)));
    }
    if (stats_.peak_words_in_use < stats_.words_in_use) {
        return internal_error("peak words below current words in use");
    }
    return Status::ok();
}

void
LocalRoot::set(ObjRef ref)
{
    heap_.root_assign(&ref_, ref);
}

GcPauseScope::GcPauseScope(ManagedHeap& heap, Kind kind)
    : heap_(heap),
      start_ns_(now_ns()),
      words_before_(heap.stats_.words_in_use),
      kind_(kind)
{
    trace::emit(trace::Event::kGcBegin,
                static_cast<uint64_t>(kind_), words_before_);
}

GcPauseScope::~GcPauseScope()
{
    uint64_t pause_ns = now_ns() - start_ns_;
    heap_.pause_stats_.record(static_cast<double>(pause_ns));
    uint64_t words_after = heap_.stats_.words_in_use;
    uint64_t reclaimed_bytes =
        words_before_ > words_after
            ? (words_before_ - words_after) * sizeof(uint64_t)
            : 0;
    switch (kind_) {
        case Kind::kMinor:
            metrics::count(metrics::Counter::kGcMinorCollections);
            break;
        case Kind::kMajor:
            metrics::count(metrics::Counter::kGcMajorCollections);
            break;
        case Kind::kRelease:
            metrics::count(metrics::Counter::kGcRegionReleases);
            break;
    }
    metrics::observe(metrics::Histogram::kGcPauseNs, pause_ns);
    metrics::count(metrics::Counter::kGcBytesReclaimed,
                   reclaimed_bytes);
    trace::emit(trace::Event::kGcEnd, pause_ns, reclaimed_bytes);
}

void
fold_heap_telemetry(const HeapStats& before, const HeapStats& after)
{
    if (!metrics::enabled()) return;
    metrics::count(metrics::Counter::kHeapAllocations,
                   after.allocations - before.allocations);
    metrics::count(metrics::Counter::kHeapBytesAllocated,
                   after.bytes_allocated - before.bytes_allocated);
    metrics::count(metrics::Counter::kHeapFrees,
                   after.frees - before.frees);
    metrics::gauge_set(metrics::Gauge::kHeapWordsInUse,
                       after.words_in_use);
    metrics::gauge_max(metrics::Gauge::kHeapPeakWordsInUse,
                       after.peak_words_in_use);
}

}  // namespace bitc::mem
