/**
 * @file
 * Abstract managed heap: the common substrate every storage-management
 * policy (region, manual free list, reference counting, mark–sweep,
 * semispace copying, generational) implements.
 *
 * This is the experimental apparatus for the paper's challenge C2
 * ("idiomatic manual storage management"): the C2 bench runs identical
 * mutator programs against each backend and compares throughput, pause
 * percentiles and footprint.
 */
#ifndef BITC_MEMORY_HEAP_HPP
#define BITC_MEMORY_HEAP_HPP

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "memory/object_model.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/stats.hpp"
#include "support/status.hpp"

namespace bitc::mem {

/** Aggregate counters every heap maintains. */
struct HeapStats {
    uint64_t allocations = 0;        ///< Successful allocate() calls.
    uint64_t bytes_allocated = 0;    ///< Cumulative payload+header bytes.
    uint64_t frees = 0;              ///< Objects reclaimed (any cause).
    uint64_t collections = 0;        ///< Full/major collections.
    uint64_t minor_collections = 0;  ///< Nursery collections (generational).
    uint64_t barrier_hits = 0;       ///< Write-barrier slow paths taken.
    uint64_t words_in_use = 0;       ///< Live words right now.
    uint64_t peak_words_in_use = 0;  ///< High-water mark of words_in_use.
};

/**
 * A heap of slotted objects addressed by handle.
 *
 * Thread-compatible, not thread-safe: each mutator thread owns its heap
 * (the shared-state story is the concurrency module's job, per the
 * paper's challenge C4).
 */
class ManagedHeap {
  public:
    /** @param heap_words Capacity of the storage array in 64-bit words. */
    explicit ManagedHeap(size_t heap_words);
    virtual ~ManagedHeap() = default;

    ManagedHeap(const ManagedHeap&) = delete;
    ManagedHeap& operator=(const ManagedHeap&) = delete;

    /** Policy name for reports, e.g. "mark-sweep". */
    virtual const char* name() const = 0;

    /**
     * Allocates an object with @p num_slots slots, the first @p num_refs
     * of which hold references (initialised to null; raw slots zeroed).
     * May trigger a collection. Fails with kResourceExhausted when the
     * policy cannot find room.
     *
     * Non-virtual on purpose: this is the single funnel through which
     * every policy allocates, so the heap-alloc fault-injection point
     * lives here and all seven policies inherit it.
     */
    Result<ObjRef> allocate(uint32_t num_slots, uint32_t num_refs,
                            uint8_t tag) {
        if (fault::inject(fault::Site::kHeapAlloc)) {
            metrics::count(metrics::Counter::kHeapAllocFailures);
            return fault::injected_error(fault::Site::kHeapAlloc);
        }
        Result<ObjRef> result = allocate_impl(num_slots, num_refs, tag);
        if (__builtin_expect(!result.is_ok(), 0)) {
            metrics::count(metrics::Counter::kHeapAllocFailures);
        }
        return result;
    }

    /**
     * Explicitly frees an object (manual policy). Backends with automatic
     * reclamation ignore it (region) or treat it as a logical release.
     */
    virtual void free_object(ObjRef ref) { (void)ref; }

    /** True when the mutator must call free_object to reclaim. */
    virtual bool needs_explicit_free() const { return false; }

    /** Forces a full collection (no-op where meaningless). */
    virtual void collect() {}

    /**
     * Self-check of the heap's own invariants, for use after failure
     * injection and in fuzz drivers.  The base verifies the handle
     * table and object graph (offsets in range, header sanity,
     * reference slots naming live objects, live/word accounting
     * consistent with the stats); policies extend it with their own
     * metadata checks (free-list consistency, refcount agreement,
     * canaries, poisoning).  Returns the first violation found as a
     * kInternal Status.
     */
    virtual Status check_integrity() const { return check_common(); }

    // --- Object access -----------------------------------------------

    /** Raw slot load. @p index must be < num_slots. */
    uint64_t load(ObjRef ref, uint32_t index) const {
        const uint64_t* w = obj_words(ref);
        assert(index < ObjHeader::num_slots(w[0]));
        return w[1 + index];
    }

    /** Raw slot store into the data region [num_refs, num_slots). */
    void store(ObjRef ref, uint32_t index, uint64_t value) {
        uint64_t* w = obj_words(ref);
        assert(index < ObjHeader::num_slots(w[0]));
        assert(index >= ObjHeader::num_refs(w[0]));
        w[1 + index] = value;
    }

    /** Reference slot load. @p index must be < num_refs. */
    ObjRef load_ref(ObjRef ref, uint32_t index) const {
        const uint64_t* w = obj_words(ref);
        assert(index < ObjHeader::num_refs(w[0]));
        return static_cast<ObjRef>(w[1 + index]);
    }

    /**
     * Reference slot store. Virtual so policies can interpose barriers
     * (RC count maintenance, generational remembered set).
     */
    virtual void store_ref(ObjRef ref, uint32_t index, ObjRef target) {
        uint64_t* w = obj_words(ref);
        assert(index < ObjHeader::num_refs(w[0]));
        w[1 + index] = target;
    }

    /**
     * Direct pointer to an object's slot words, bypassing the handle
     * table on every access.  Valid only until the next allocation,
     * free or collection: moving policies relocate storage, so callers
     * must re-resolve after anything that can collect.  The VM's
     * unboxed fast paths (which run only over the non-moving region
     * and manual policies) are the intended user.
     */
    uint64_t* slots(ObjRef ref) { return obj_words(ref) + 1; }
    const uint64_t* slots(ObjRef ref) const {
        return obj_words(ref) + 1;
    }

    uint32_t num_slots(ObjRef ref) const {
        return ObjHeader::num_slots(obj_words(ref)[0]);
    }
    uint32_t num_refs(ObjRef ref) const {
        return ObjHeader::num_refs(obj_words(ref)[0]);
    }
    uint8_t tag(ObjRef ref) const {
        return ObjHeader::tag(obj_words(ref)[0]);
    }

    // --- Checked access ----------------------------------------------
    //
    // The load/store family above asserts validity (free in release
    // builds, the C-like fast path).  These variants instead validate
    // the handle and index and fail with a Status, so a use-after-free
    // through a stale handle is a reportable error, not UB — the
    // interface fault-handling code uses when the handle's provenance
    // is untrusted (FFI boundaries, post-failure probes, tests).

    /** Like load, but rejects stale handles and bad indices. */
    Result<uint64_t> checked_load(ObjRef ref, uint32_t index) const;
    /** Like store, but rejects stale handles and bad indices. */
    Status checked_store(ObjRef ref, uint32_t index, uint64_t value);
    /** Like load_ref, but rejects stale handles and bad indices. */
    Result<ObjRef> checked_load_ref(ObjRef ref, uint32_t index) const;
    /** Like store_ref, but validates both handles first. */
    Status checked_store_ref(ObjRef ref, uint32_t index, ObjRef target);

    /** True if @p ref names a currently-allocated object. */
    bool is_live(ObjRef ref) const {
        return ref != kNullRef && ref < table_.size() &&
               table_[ref] != kFreeEntry;
    }

    // --- Roots --------------------------------------------------------

    /**
     * Registers @p root as a GC root. The pointed-to ObjRef may be
     * updated by the mutator at any time between collections.
     * RC heaps additionally count the current referent.
     */
    virtual void add_root(ObjRef* root) { roots_.push_back(root); }

    /** Unregisters a root previously added with add_root. */
    virtual void remove_root(ObjRef* root);

    /**
     * Assigns through a registered root. Mutators must use this (or
     * LocalRoot::set) instead of writing *root directly so that
     * reference-counting policies can maintain counts.
     */
    virtual void root_assign(ObjRef* root, ObjRef value) { *root = value; }

    size_t root_count() const { return roots_.size(); }

    // --- Introspection -------------------------------------------------

    const HeapStats& stats() const { return stats_; }
    /** Pause-time samples in ns (collections and slow-path frees). */
    const SampleStats& pause_stats() const { return pause_stats_; }
    size_t heap_words() const { return heap_words_; }
    /** Count of currently live objects. */
    size_t live_objects() const { return live_objects_; }

  protected:
    static constexpr uint32_t kFreeEntry = 0xffffffffu;

    /** Policy-specific allocation, called by the allocate() funnel. */
    virtual Result<ObjRef> allocate_impl(uint32_t num_slots,
                                         uint32_t num_refs,
                                         uint8_t tag) = 0;

    /**
     * Storage words an object occupies for accounting purposes.
     * Free-list policies round requests up to a block size; the base
     * charge is exactly the object's words.
     */
    virtual size_t occupied_words(ObjRef ref) const {
        return object_words(num_slots(ref));
    }

    /**
     * Whether reference slots of live objects must name live objects.
     * Manual and region policies tolerate dangling handles by design
     * (the mutator may free/release a referenced object); tracing
     * policies cannot, since a dangling edge would crash the collector.
     */
    virtual bool refs_must_be_live() const { return true; }

    /** The shared table/graph/accounting verification. */
    Status check_common() const;

    uint64_t* obj_words(ObjRef ref) {
        assert(is_live(ref));
        return storage_.get() + table_[ref];
    }
    const uint64_t* obj_words(ObjRef ref) const {
        assert(is_live(ref));
        return storage_.get() + table_[ref];
    }

    /** Binds a fresh handle id to @p word_offset and writes the header. */
    ObjRef bind_handle(size_t word_offset, uint32_t num_slots,
                       uint32_t num_refs, uint8_t tag);

    /** Releases a handle id for reuse (object storage handled by caller). */
    void release_handle(ObjRef ref);

    /** Updates in-use accounting after an allocation of @p words. */
    void account_alloc(uint32_t words);
    /** Updates in-use accounting after reclaiming @p words. */
    void account_free(uint32_t words);

    std::unique_ptr<uint64_t[]> storage_;
    size_t heap_words_;
    /** Handle table: object id -> word offset (kFreeEntry when free). */
    std::vector<uint32_t> table_;
    std::vector<uint32_t> free_ids_;
    std::vector<ObjRef*> roots_;
    size_t live_objects_ = 0;
    HeapStats stats_;
    SampleStats pause_stats_;

  private:
    friend class GcPauseScope;
};

/**
 * RAII around one stop-the-world pause.  Every policy's collect path
 * opens one of these instead of timing itself: the scope records the
 * pause into the heap's pause_stats_, the global gc.pause_ns
 * histogram and the per-kind collection counter, and brackets the
 * pause with gc-begin/gc-end trace events carrying the pause length
 * and bytes reclaimed (live-word delta across the scope).
 */
class GcPauseScope {
  public:
    enum class Kind : uint8_t {
        kMinor = 0,    ///< Nursery collection (generational).
        kMajor = 1,    ///< Full collection, any tracing policy.
        kRelease = 2,  ///< Region bulk release.
    };

    GcPauseScope(ManagedHeap& heap, Kind kind);
    ~GcPauseScope();
    GcPauseScope(const GcPauseScope&) = delete;
    GcPauseScope& operator=(const GcPauseScope&) = delete;

  private:
    ManagedHeap& heap_;
    uint64_t start_ns_;
    uint64_t words_before_;
    Kind kind_;
};

/**
 * Folds the difference between two HeapStats readings into the global
 * metrics registry (allocations, bytes, frees as counter deltas;
 * words-in-use and its peak as gauges).  Allocation hot paths stay
 * uninstrumented — the VM and mutator harnesses call this once per
 * run with before/after readings of the same heap.
 */
void fold_heap_telemetry(const HeapStats& before, const HeapStats& after);

/** RAII root registration for a stack-local reference. */
class LocalRoot {
  public:
    LocalRoot(ManagedHeap& heap, ObjRef initial = kNullRef)
        : heap_(heap), ref_(initial) {
        heap_.add_root(&ref_);
    }
    ~LocalRoot() { heap_.remove_root(&ref_); }
    LocalRoot(const LocalRoot&) = delete;
    LocalRoot& operator=(const LocalRoot&) = delete;

    ObjRef get() const { return ref_; }
    void set(ObjRef ref);
    operator ObjRef() const { return ref_; }

  private:
    ManagedHeap& heap_;
    ObjRef ref_;
};

}  // namespace bitc::mem

#endif  // BITC_MEMORY_HEAP_HPP
