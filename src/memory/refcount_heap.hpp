/**
 * @file
 * Reference-counting heap with a backup tracing collector for cycles.
 *
 * Incremental and predictable (the properties the lecture material and
 * Wilson's survey credit RC with), but pays a count-maintenance barrier
 * on every reference store — one of the costs the C2 experiment
 * measures.  Cyclic garbage is unreclaimable by counts alone, so
 * collect() runs a mark phase from the roots and frees the unmarked
 * remainder, exactly the hybrid real RC systems deploy.
 */
#ifndef BITC_MEMORY_REFCOUNT_HEAP_HPP
#define BITC_MEMORY_REFCOUNT_HEAP_HPP

#include <vector>

#include "memory/freelist_space.hpp"
#include "memory/heap.hpp"

namespace bitc::mem {

/** Heap whose objects are reclaimed when their reference count drops to
 *  zero; roots and heap slots both contribute to the count. */
class RefCountHeap : public ManagedHeap {
  public:
    explicit RefCountHeap(size_t heap_words)
        : ManagedHeap(heap_words),
          space_(storage_.get(), 0, heap_words) {}

    const char* name() const override { return "refcount"; }

    /** Count-maintaining write barrier. */
    void store_ref(ObjRef ref, uint32_t index, ObjRef target) override;

    void add_root(ObjRef* root) override;
    void remove_root(ObjRef* root) override;
    void root_assign(ObjRef* root, ObjRef value) override;

    /** Backup tracing collection: reclaims cyclic garbage. */
    void collect() override;

    /** Current count of an object (testing hook). */
    uint32_t ref_count(ObjRef ref) const {
        return counts_[ref];
    }

    Status check_integrity() const override;

  protected:
    Result<ObjRef> allocate_impl(uint32_t num_slots, uint32_t num_refs,
                                 uint8_t tag) override;

    size_t occupied_words(ObjRef ref) const override {
        return FreeListSpace::round_up(object_words(num_slots(ref)));
    }

  private:
    void increment(ObjRef ref);
    void decrement(ObjRef ref);
    void reclaim(ObjRef ref);

    FreeListSpace space_;
    std::vector<uint32_t> counts_;  // indexed by handle id
    std::vector<ObjRef> dec_worklist_;
};

}  // namespace bitc::mem

#endif  // BITC_MEMORY_REFCOUNT_HEAP_HPP
