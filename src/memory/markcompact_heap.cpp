#include "memory/markcompact_heap.hpp"

#include <algorithm>
#include <cstring>

#include "support/string_util.hpp"
#include "support/trace.hpp"

namespace bitc::mem {

Result<ObjRef>
MarkCompactHeap::allocate_impl(uint32_t num_slots, uint32_t num_refs,
                               uint8_t tag)
{
    uint32_t words = object_words(num_slots);
    if (cursor_ + words > heap_words_) {
        trace::emit(trace::Event::kAllocSlowPath, words);
        collect();
        if (cursor_ + words > heap_words_) {
            return resource_exhausted_error(
                str_format("mark-compact heap exhausted (%zu live "
                           "words)", cursor_));
        }
    }
    size_t offset = cursor_;
    cursor_ += words;
    ObjRef ref = bind_handle(offset, num_slots, num_refs, tag);
    account_alloc(words);
    return ref;
}

void
MarkCompactHeap::collect()
{
    // Injected fault: deny the compaction; the caller's retry fails
    // with clean exhaustion.
    if (fault::inject(fault::Site::kGcTrigger)) return;
    GcPauseScope pause(*this, GcPauseScope::Kind::kMajor);
    ++stats_.collections;

    // Mark.
    std::vector<bool> marked(table_.size(), false);
    std::vector<ObjRef> worklist;
    for (ObjRef* root : roots_) {
        if (*root != kNullRef && !marked[*root]) {
            marked[*root] = true;
            worklist.push_back(*root);
        }
    }
    while (!worklist.empty()) {
        ObjRef cur = worklist.back();
        worklist.pop_back();
        uint32_t refs = num_refs(cur);
        for (uint32_t i = 0; i < refs; ++i) {
            ObjRef child = load_ref(cur, i);
            if (child != kNullRef && !marked[child]) {
                marked[child] = true;
                worklist.push_back(child);
            }
        }
    }

    // Release dead handles, gather survivors in address order.
    std::vector<ObjRef> live;
    for (ObjRef ref = 1; ref < table_.size(); ++ref) {
        if (table_[ref] == kFreeEntry) continue;
        if (!marked[ref]) {
            account_free(object_words(num_slots(ref)));
            release_handle(ref);
        } else {
            live.push_back(ref);
        }
    }
    std::sort(live.begin(), live.end(), [&](ObjRef a, ObjRef b) {
        return table_[a] < table_[b];
    });

    // Slide: address order is preserved, so memmove never overlaps
    // incorrectly (destination <= source for every object).
    size_t to = 0;
    for (ObjRef ref : live) {
        uint32_t words = object_words(num_slots(ref));
        size_t from = table_[ref];
        if (from != to) {
            std::memmove(storage_.get() + to, storage_.get() + from,
                         words * sizeof(uint64_t));
            table_[ref] = static_cast<uint32_t>(to);
        }
        to += words;
    }
    cursor_ = to;
}

Status
MarkCompactHeap::check_integrity() const
{
    BITC_RETURN_IF_ERROR(check_common());
    for (ObjRef ref = 1; ref < table_.size(); ++ref) {
        if (table_[ref] == kFreeEntry) continue;
        if (table_[ref] + object_words(num_slots(ref)) > cursor_) {
            return internal_error(str_format(
                "object %u extends past the compaction cursor %zu",
                ref, cursor_));
        }
    }
    if (stats_.words_in_use > cursor_) {
        return internal_error(
            "mark-compact accounting exceeds the bump cursor");
    }
    return Status::ok();
}

}  // namespace bitc::mem
