/**
 * @file
 * Mutator programs for the storage-management experiment (C2).
 *
 * Each workload runs unchanged against any ManagedHeap backend; the
 * only policy-specific behaviour is how dead objects are released
 * (explicit free for the manual heap, dropped references elsewhere,
 * bulk release for regions), selected by the heap's own capabilities.
 */
#ifndef BITC_MEMORY_MUTATOR_HPP
#define BITC_MEMORY_MUTATOR_HPP

#include <cstdint>

#include "memory/heap.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"

namespace bitc::mem {

/**
 * Result counters a workload reports.  The pause/occupancy/rate block
 * reads the heap's own statistics across the run, so the same numbers
 * land here (per-workload) and in the global metrics registry
 * (process-wide) without instrumenting allocation hot paths.
 */
struct MutatorReport {
    uint64_t operations = 0;     ///< Workload-defined unit of progress.
    uint64_t check_value = 0;    ///< Order-independent checksum over live data.
    double elapsed_ms = 0.0;
    uint64_t gc_pauses = 0;        ///< Pauses recorded during the run.
    double gc_pause_ms = 0.0;      ///< Total pause time during the run.
    uint64_t peak_words_in_use = 0;  ///< Heap high-water mark (occupancy).
    double alloc_mb_per_s = 0.0;   ///< Allocation rate over the run.
};

/**
 * Sliding-window churn: allocate short-lived objects, keep the most
 * recent @p window live, release the rest.  Models packet-buffer /
 * request-scratch allocation in systems code.
 *
 * @param heap     Backend under test.
 * @param total    Objects to allocate in total.
 * @param window   Live window size.
 * @param slots    Payload slots per object.
 * @param rng      Workload randomness (object sizes jitter by +/-50%).
 */
Result<MutatorReport> run_churn(ManagedHeap& heap, uint64_t total,
                                uint32_t window, uint32_t slots, Rng& rng);

/**
 * GCBench-style balanced binary trees: builds and drops trees of
 * @p depth, @p iterations times, keeping one long-lived tree alive.
 * Stresses tracing (deep object graphs, pointer-heavy payloads).
 */
Result<MutatorReport> run_binary_trees(ManagedHeap& heap, uint32_t depth,
                                       uint32_t iterations);

/**
 * Random graph mutation: @p node_count objects, each with @p fanout
 * reference slots, rewired @p mutations times.  Stresses the write
 * barrier (RC count traffic, generational remembered set).
 */
Result<MutatorReport> run_graph_mutation(ManagedHeap& heap,
                                         uint32_t node_count,
                                         uint32_t fanout,
                                         uint64_t mutations, Rng& rng);

}  // namespace bitc::mem

#endif  // BITC_MEMORY_MUTATOR_HPP
