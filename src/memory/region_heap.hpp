/**
 * @file
 * Region (arena) heap: bump-pointer allocation, bulk deallocation at
 * region marks.  The predictable, compile-time-checkable discipline the
 * paper (and the Cyclone/MLKit line it cites) holds up as the idiomatic
 * alternative to both malloc/free and GC — challenge C2.
 */
#ifndef BITC_MEMORY_REGION_HEAP_HPP
#define BITC_MEMORY_REGION_HEAP_HPP

#include "memory/heap.hpp"

namespace bitc::mem {

/**
 * Bump allocator with LIFO region semantics.
 *
 * free_object is a no-op; storage is reclaimed only by release_to(mark)
 * or reset_region(), which free *every* object allocated after the
 * mark.  This is exactly the lifetime discipline region type systems
 * enforce statically; here the dynamic heap enforces it by bulk
 * invalidation (handles of released objects die).
 */
class RegionHeap : public ManagedHeap {
  public:
    explicit RegionHeap(size_t heap_words) : ManagedHeap(heap_words) {}

    const char* name() const override { return "region"; }

    /** Current region mark; pass to release_to to end the region. */
    size_t mark() const { return cursor_; }

    /**
     * Frees every object allocated at or after @p mark (their handles
     * become invalid) and rewinds the bump cursor.
     */
    void release_to(size_t mark);

    /** Frees everything in the heap. */
    void reset_region() { release_to(0); }

    Status check_integrity() const override;

  protected:
    Result<ObjRef> allocate_impl(uint32_t num_slots, uint32_t num_refs,
                                 uint8_t tag) override;

    /** Bulk release can strand references into the released suffix. */
    bool refs_must_be_live() const override { return false; }

  private:
    size_t cursor_ = 0;
};

}  // namespace bitc::mem

#endif  // BITC_MEMORY_REGION_HEAP_HPP
