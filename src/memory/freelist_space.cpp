#include "memory/freelist_space.hpp"

#include <cassert>

#include "support/string_util.hpp"

namespace bitc::mem {

namespace {
// In-block free metadata layout.
constexpr size_t kNextWord = 0;
constexpr size_t kSizeWord = 1;
}  // namespace

FreeListSpace::FreeListSpace(uint64_t* storage, size_t begin, size_t end)
    : storage_(storage), begin_(begin), end_(end), cursor_(begin)
{
    assert(begin <= end);
    heads_.fill(kNoBlock);
}

size_t
FreeListSpace::class_index(size_t words) const
{
    assert(words >= kMinBlockWords);
    if (words <= kMaxExact) return words - kMinBlockWords;
    return heads_.size() - 1;  // large list
}

void
FreeListSpace::push_block(uint32_t offset, size_t words)
{
    size_t cls = class_index(words);
    storage_[offset + kNextWord] = heads_[cls];
    storage_[offset + kSizeWord] = words;
    heads_[cls] = offset;
    free_list_words_ += words;
    if (poison_) {
        for (size_t i = kMinBlockWords; i < words; ++i) {
            storage_[offset + i] = kPoison;
        }
    }
}

uint32_t
FreeListSpace::pop_block(size_t cls)
{
    uint32_t offset = heads_[cls];
    if (offset == kNoBlock) return kNoBlock;
    heads_[cls] = static_cast<uint32_t>(storage_[offset + kNextWord]);
    free_list_words_ -= storage_[offset + kSizeWord];
    return offset;
}

uint32_t
FreeListSpace::carve(size_t words)
{
    if (cursor_ + words > end_) return kNoBlock;
    uint32_t offset = static_cast<uint32_t>(cursor_);
    cursor_ += words;
    return offset;
}

uint32_t
FreeListSpace::split_search(size_t words)
{
    // Exact classes above the request, smallest first.
    if (words <= kMaxExact) {
        for (size_t sz = words + 1; sz <= kMaxExact; ++sz) {
            // A split remainder below kMinBlockWords would leak; skip
            // donor sizes that cannot split cleanly.
            if (sz - words != 0 && sz - words < kMinBlockWords) continue;
            size_t cls = class_index(sz);
            uint32_t offset = pop_block(cls);
            if (offset == kNoBlock) continue;
            if (sz > words) {
                push_block(offset + static_cast<uint32_t>(words),
                           sz - words);
            }
            return offset;
        }
    }
    // First fit in the large list.
    size_t large = heads_.size() - 1;
    uint32_t prev = kNoBlock;
    uint32_t cur = heads_[large];
    while (cur != kNoBlock) {
        size_t sz = storage_[cur + kSizeWord];
        if (sz == words || sz >= words + kMinBlockWords) {
            uint32_t next = static_cast<uint32_t>(storage_[cur + kNextWord]);
            if (prev == kNoBlock) {
                heads_[large] = next;
            } else {
                storage_[prev + kNextWord] = next;
            }
            free_list_words_ -= sz;
            if (sz > words) {
                push_block(cur + static_cast<uint32_t>(words), sz - words);
            }
            return cur;
        }
        prev = cur;
        cur = static_cast<uint32_t>(storage_[cur + kNextWord]);
    }
    return kNoBlock;
}

uint32_t
FreeListSpace::allocate(size_t words)
{
    words = round_up(words);
    // Reuse freed blocks before touching the wilderness: keeps the
    // footprint tight and exercises the free lists the way malloc does.
    if (words <= kMaxExact) {
        uint32_t offset = pop_block(class_index(words));
        if (offset != kNoBlock) return offset;
    } else {
        uint32_t offset = split_search(words);
        if (offset != kNoBlock) return offset;
    }
    uint32_t offset = carve(words);
    if (offset != kNoBlock) return offset;
    return split_search(words);
}

void
FreeListSpace::free_block(uint32_t offset, size_t words)
{
    words = round_up(words);
    assert(offset >= begin_ && offset + words <= cursor_);
    push_block(offset, words);
}

void
FreeListSpace::reset()
{
    heads_.fill(kNoBlock);
    free_list_words_ = 0;
    cursor_ = begin_;
}

Status
FreeListSpace::check_integrity() const
{
    // Any chain longer than the segment could hold is a cycle.
    const size_t max_blocks =
        (cursor_ - begin_) / kMinBlockWords + 1;
    size_t total_free = 0;
    for (size_t cls = 0; cls < heads_.size(); ++cls) {
        bool large = cls == heads_.size() - 1;
        size_t steps = 0;
        uint32_t cur = heads_[cls];
        while (cur != kNoBlock) {
            if (++steps > max_blocks) {
                return internal_error(str_format(
                    "free list class %zu is cyclic", cls));
            }
            if (cur < begin_ || cur >= cursor_) {
                return internal_error(str_format(
                    "free block offset %u outside carved range "
                    "[%zu, %zu)",
                    cur, begin_, cursor_));
            }
            size_t size = storage_[cur + kSizeWord];
            if (size < kMinBlockWords || cur + size > cursor_) {
                return internal_error(str_format(
                    "free block at %u has impossible size %zu", cur,
                    size));
            }
            if (large ? size <= kMaxExact
                      : size != cls + kMinBlockWords) {
                return internal_error(str_format(
                    "free block at %u (size %zu) is on the wrong "
                    "list (class %zu)",
                    cur, size, cls));
            }
            if (poison_) {
                for (size_t i = kMinBlockWords; i < size; ++i) {
                    if (storage_[cur + i] != kPoison) {
                        return internal_error(str_format(
                            "freed block at %u modified after free "
                            "(word %zu)",
                            cur, i));
                    }
                }
            }
            total_free += size;
            cur = static_cast<uint32_t>(storage_[cur + kNextWord]);
        }
    }
    if (total_free != free_list_words_) {
        return internal_error(str_format(
            "free-list ledger drifted: %zu words on lists, %zu "
            "recorded",
            total_free, free_list_words_));
    }
    return Status::ok();
}

}  // namespace bitc::mem
