#include "memory/region_heap.hpp"

#include "support/string_util.hpp"

namespace bitc::mem {

Result<ObjRef>
RegionHeap::allocate_impl(uint32_t num_slots, uint32_t num_refs,
                          uint8_t tag)
{
    uint32_t words = object_words(num_slots);
    if (cursor_ + words > heap_words_) {
        return resource_exhausted_error(
            str_format("region heap full (%zu of %zu words used)",
                       cursor_, heap_words_));
    }
    size_t offset = cursor_;
    cursor_ += words;
    ObjRef ref = bind_handle(offset, num_slots, num_refs, tag);
    account_alloc(words);
    return ref;
}

void
RegionHeap::release_to(size_t mark)
{
    assert(mark <= cursor_);
    GcPauseScope pause(*this, GcPauseScope::Kind::kRelease);
    // Handles are not offset-ordered, so scan the table for objects at
    // or past the mark. O(table) — the bulk-free cost the region model
    // amortises over the whole region's population.
    for (ObjRef ref = 1; ref < table_.size(); ++ref) {
        if (table_[ref] == kFreeEntry) continue;
        if (table_[ref] >= mark) {
            account_free(object_words(num_slots(ref)));
            release_handle(ref);
        }
    }
    cursor_ = mark;
}

Status
RegionHeap::check_integrity() const
{
    BITC_RETURN_IF_ERROR(check_common());
    // Every live object sits wholly below the bump cursor.
    for (ObjRef ref = 1; ref < table_.size(); ++ref) {
        if (table_[ref] == kFreeEntry) continue;
        if (table_[ref] + object_words(num_slots(ref)) > cursor_) {
            return internal_error(str_format(
                "region object %u extends past the bump cursor %zu",
                ref, cursor_));
        }
    }
    if (stats_.words_in_use > cursor_) {
        return internal_error(
            "region accounting exceeds the bump cursor");
    }
    return Status::ok();
}

}  // namespace bitc::mem
