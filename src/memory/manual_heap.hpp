/**
 * @file
 * Manual heap: segregated-fit malloc/free.  The C baseline discipline
 * every other policy in the C2 experiment is compared against.
 */
#ifndef BITC_MEMORY_MANUAL_HEAP_HPP
#define BITC_MEMORY_MANUAL_HEAP_HPP

#include "memory/freelist_space.hpp"
#include "memory/heap.hpp"

namespace bitc::mem {

/**
 * Explicitly managed heap. The mutator is responsible for calling
 * free_object exactly once per object; the heap does not trace, count
 * or otherwise police references (dangling handles are caught only by
 * the debug-build is_live assertions).
 */
class ManualHeap : public ManagedHeap {
  public:
    explicit ManualHeap(size_t heap_words)
        : ManagedHeap(heap_words),
          space_(storage_.get(), 0, heap_words) {}

    const char* name() const override { return "manual"; }

    Result<ObjRef> allocate(uint32_t num_slots, uint32_t num_refs,
                            uint8_t tag) override;

    void free_object(ObjRef ref) override;

    bool needs_explicit_free() const override { return true; }

    /** Words sitting on free lists (fragmentation probe). */
    size_t free_list_words() const {
        return space_.free_words() - space_.wilderness_words();
    }

  private:
    FreeListSpace space_;
};

}  // namespace bitc::mem

#endif  // BITC_MEMORY_MANUAL_HEAP_HPP
