/**
 * @file
 * Manual heap: segregated-fit malloc/free.  The C baseline discipline
 * every other policy in the C2 experiment is compared against.
 */
#ifndef BITC_MEMORY_MANUAL_HEAP_HPP
#define BITC_MEMORY_MANUAL_HEAP_HPP

#include "memory/freelist_space.hpp"
#include "memory/heap.hpp"

namespace bitc::mem {

/**
 * Explicitly managed heap. The mutator is responsible for calling
 * free_object exactly once per object; the heap does not trace, count
 * or otherwise police references (dangling handles are caught only by
 * the debug-build is_live assertions).
 */
class ManualHeap : public ManagedHeap {
  public:
    explicit ManualHeap(size_t heap_words)
        : ManagedHeap(heap_words),
          space_(storage_.get(), 0, heap_words) {}

    const char* name() const override { return "manual"; }

    void free_object(ObjRef ref) override;

    bool needs_explicit_free() const override { return true; }

    /** Words sitting on free lists (fragmentation probe). */
    size_t free_list_words() const {
        return space_.free_words() - space_.wilderness_words();
    }

    /**
     * Debug hardening: a guard canary word after every payload (heap
     * overruns by one-off stores trip it) plus freed-payload poisoning
     * in the underlying free lists.  Must be enabled before the first
     * allocation — the canary changes block sizing, so flipping it
     * mid-life would corrupt the accounting.
     */
    void enable_hardening() {
        assert(live_objects() == 0 && stats().allocations == 0);
        hardened_ = true;
        space_.set_poison(true);
    }
    bool hardened() const { return hardened_; }

    Status check_integrity() const override;

  protected:
    Result<ObjRef> allocate_impl(uint32_t num_slots, uint32_t num_refs,
                                 uint8_t tag) override;

    size_t occupied_words(ObjRef ref) const override {
        return FreeListSpace::round_up(block_words(num_slots(ref)));
    }

    /** Freed referents are the mutator's problem in the C discipline. */
    bool refs_must_be_live() const override { return false; }

  private:
    /** Block size for a payload: object words plus the canary. */
    size_t block_words(uint32_t num_slots) const {
        return object_words(num_slots) + (hardened_ ? 1 : 0);
    }
    /** Canary value: offset-salted so swapped blocks are detected. */
    uint64_t canary_for(size_t offset) const {
        return 0xc0de5afec0de5afeull ^ offset;
    }

    FreeListSpace space_;
    bool hardened_ = false;
};

}  // namespace bitc::mem

#endif  // BITC_MEMORY_MANUAL_HEAP_HPP
