#include "memory/mutator.hpp"

#include <vector>

#include "memory/region_heap.hpp"
#include "support/stats.hpp"

namespace bitc::mem {

namespace {

/**
 * Brackets one workload: snapshots the heap's statistics at entry and,
 * at finish(), derives the report's pause/occupancy/allocation-rate
 * block from the deltas and folds the same deltas into the global
 * metrics registry.
 */
class WorkloadTelemetry {
  public:
    explicit WorkloadTelemetry(ManagedHeap& heap)
        : heap_(heap),
          before_(heap.stats()),
          pauses_before_(heap.pause_stats().count()),
          pause_ns_before_(heap.pause_stats().count() > 0
                               ? heap.pause_stats().sum()
                               : 0.0),
          start_ns_(now_ns()) {}

    void finish(MutatorReport& report) {
        report.elapsed_ms =
            static_cast<double>(now_ns() - start_ns_) / 1e6;
        const HeapStats& after = heap_.stats();
        report.gc_pauses = heap_.pause_stats().count() - pauses_before_;
        double pause_ns_after = heap_.pause_stats().count() > 0
                                    ? heap_.pause_stats().sum()
                                    : 0.0;
        report.gc_pause_ms = (pause_ns_after - pause_ns_before_) / 1e6;
        report.peak_words_in_use = after.peak_words_in_use;
        double bytes = static_cast<double>(after.bytes_allocated -
                                           before_.bytes_allocated);
        if (report.elapsed_ms > 0.0) {
            report.alloc_mb_per_s =
                bytes / (1024.0 * 1024.0) / (report.elapsed_ms / 1e3);
        }
        fold_heap_telemetry(before_, after);
    }

  private:
    ManagedHeap& heap_;
    HeapStats before_;
    size_t pauses_before_;
    double pause_ns_before_;
    uint64_t start_ns_;
};

}  // namespace

Result<MutatorReport>
run_churn(ManagedHeap& heap, uint64_t total, uint32_t window,
          uint32_t slots, Rng& rng)
{
    MutatorReport report;
    WorkloadTelemetry telemetry(heap);

    auto* region = dynamic_cast<RegionHeap*>(&heap);
    if (region != nullptr) {
        // Region idiom: lifetimes are phase-shaped, so the window is a
        // region released wholesale each phase.
        uint64_t allocated = 0;
        while (allocated < total) {
            size_t mark = region->mark();
            uint64_t phase = std::min<uint64_t>(window, total - allocated);
            for (uint64_t i = 0; i < phase; ++i) {
                uint32_t sz = static_cast<uint32_t>(
                    slots / 2 + rng.next_below(slots + 1));
                BITC_ASSIGN_OR_RETURN(ObjRef obj,
                                      heap.allocate(sz, 0, 1));
                heap.store(obj, 0, allocated + i);
                report.check_value += heap.load(obj, 0);
            }
            allocated += phase;
            region->release_to(mark);
        }
        report.operations = allocated;
        telemetry.finish(report);
        return report;
    }

    // General idiom: FIFO window of live objects.
    std::vector<ObjRef> ring(window, kNullRef);
    for (ObjRef& slot : ring) heap.add_root(&slot);

    Status failure = Status::ok();
    for (uint64_t i = 0; i < total; ++i) {
        uint32_t idx = static_cast<uint32_t>(i % window);
        ObjRef old = ring[idx];
        if (old != kNullRef) {
            report.check_value += heap.load(old, 0);
            heap.root_assign(&ring[idx], kNullRef);
            if (heap.needs_explicit_free()) heap.free_object(old);
        }
        uint32_t sz = static_cast<uint32_t>(
            slots / 2 + rng.next_below(slots + 1));
        auto obj = heap.allocate(sz, 0, 1);
        if (!obj.is_ok()) {
            failure = obj.status();
            break;
        }
        heap.store(obj.value(), 0, i);
        heap.root_assign(&ring[idx], obj.value());
        ++report.operations;
    }

    // Drain the window so the checksum covers every allocated object
    // (matching the region path, which checksums at allocation time).
    for (ObjRef& slot : ring) {
        if (slot != kNullRef) {
            report.check_value += heap.load(slot, 0);
            ObjRef old = slot;
            heap.root_assign(&slot, kNullRef);
            if (heap.needs_explicit_free()) heap.free_object(old);
        }
    }

    for (ObjRef& slot : ring) heap.remove_root(&slot);
    if (!failure.is_ok()) return failure;
    telemetry.finish(report);
    return report;
}

namespace {

constexpr uint8_t kTreeTag = 2;

/** Post-order explicit free for the manual policy. */
void
free_tree(ManagedHeap& heap, ObjRef node)
{
    if (node == kNullRef) return;
    free_tree(heap, heap.load_ref(node, 0));
    free_tree(heap, heap.load_ref(node, 1));
    heap.free_object(node);
}

Result<ObjRef>
build_tree(ManagedHeap& heap, uint32_t depth)
{
    if (depth == 0) {
        BITC_ASSIGN_OR_RETURN(ObjRef leaf, heap.allocate(3, 2, kTreeTag));
        heap.store(leaf, 2, 1);  // subtree node count
        return leaf;
    }
    // Subtrees are held in LocalRoots (a shadow stack) because any
    // allocation may trigger a collection; on failure the manual
    // policy additionally needs the partial subtrees freed, or an
    // injected mid-build OOM would leak them.
    LocalRoot left(heap);
    {
        BITC_ASSIGN_OR_RETURN(ObjRef l, build_tree(heap, depth - 1));
        left.set(l);
    }
    LocalRoot right(heap);
    {
        auto r = build_tree(heap, depth - 1);
        if (!r.is_ok()) {
            if (heap.needs_explicit_free()) {
                free_tree(heap, left.get());
                left.set(kNullRef);
            }
            return r.status();
        }
        right.set(r.value());
    }
    auto node = heap.allocate(3, 2, kTreeTag);
    if (!node.is_ok()) {
        if (heap.needs_explicit_free()) {
            free_tree(heap, left.get());
            free_tree(heap, right.get());
            left.set(kNullRef);
            right.set(kNullRef);
        }
        return node.status();
    }
    heap.store_ref(node.value(), 0, left.get());
    heap.store_ref(node.value(), 1, right.get());
    heap.store(node.value(), 2,
               heap.load(left.get(), 2) + heap.load(right.get(), 2) + 1);
    return node.value();
}

/** Iterative node count of a tree (validation checksum). */
uint64_t
count_tree(const ManagedHeap& heap, ObjRef root)
{
    if (root == kNullRef) return 0;
    uint64_t count = 0;
    std::vector<ObjRef> stack{root};
    while (!stack.empty()) {
        ObjRef cur = stack.back();
        stack.pop_back();
        ++count;
        for (uint32_t i = 0; i < 2; ++i) {
            ObjRef child = heap.load_ref(cur, i);
            if (child != kNullRef) stack.push_back(child);
        }
    }
    return count;
}

}  // namespace

Result<MutatorReport>
run_binary_trees(ManagedHeap& heap, uint32_t depth, uint32_t iterations)
{
    MutatorReport report;
    WorkloadTelemetry telemetry(heap);
    auto* region = dynamic_cast<RegionHeap*>(&heap);

    // One long-lived tree survives the whole run (old-generation bait).
    LocalRoot long_lived(heap);
    {
        BITC_ASSIGN_OR_RETURN(ObjRef t, build_tree(heap, depth));
        long_lived.set(t);
    }

    for (uint32_t iter = 0; iter < iterations; ++iter) {
        size_t mark = region != nullptr ? region->mark() : 0;
        LocalRoot scratch(heap);
        {
            auto t = build_tree(heap, depth);
            if (!t.is_ok()) {
                // build_tree cleaned up its partial subtrees; the
                // long-lived tree is this frame's responsibility.
                if (heap.needs_explicit_free()) {
                    free_tree(heap, long_lived.get());
                    long_lived.set(kNullRef);
                }
                return t.status();
            }
            scratch.set(t.value());
        }
        report.check_value += count_tree(heap, scratch.get());
        ObjRef dead = scratch.get();
        scratch.set(kNullRef);
        if (region != nullptr) {
            region->release_to(mark);
        } else if (heap.needs_explicit_free()) {
            free_tree(heap, dead);
        }
        ++report.operations;
    }

    report.check_value += count_tree(heap, long_lived.get());
    // Leave the heap empty under the explicit-free discipline so leak
    // checks can demand live_objects() == 0 on every exit path.
    if (heap.needs_explicit_free()) {
        free_tree(heap, long_lived.get());
        long_lived.set(kNullRef);
    }
    telemetry.finish(report);
    return report;
}

Result<MutatorReport>
run_graph_mutation(ManagedHeap& heap, uint32_t node_count, uint32_t fanout,
                   uint64_t mutations, Rng& rng)
{
    MutatorReport report;
    WorkloadTelemetry telemetry(heap);
    constexpr uint8_t kNodeTag = 3;

    // The manual policy cannot know a node's in-degree from the heap, so
    // the idiomatic-C pattern is an intrusive count maintained by the
    // application. That bookkeeping is part of what C2 measures.
    const bool manual = heap.needs_explicit_free();
    std::vector<uint32_t> indegree;

    auto inc = [&](ObjRef ref) {
        if (!manual || ref == kNullRef) return;
        if (indegree.size() <= ref) indegree.resize(ref + 1, 0);
        ++indegree[ref];
    };
    std::vector<ObjRef> dec_stack;
    auto dec = [&](ObjRef ref) {
        if (!manual || ref == kNullRef) return;
        dec_stack.push_back(ref);
        while (!dec_stack.empty()) {
            ObjRef cur = dec_stack.back();
            dec_stack.pop_back();
            if (--indegree[cur] != 0) continue;
            for (uint32_t i = 0; i < fanout; ++i) {
                ObjRef child = heap.load_ref(cur, i);
                if (child != kNullRef) dec_stack.push_back(child);
            }
            heap.free_object(cur);
        }
    };

    LocalRoot array_root(heap);

    // Exhaustive teardown for the manual policy: the intrusive counts
    // know every live node (rewiring can form cycles a count cascade
    // would strand), so failure paths and the normal exit free the
    // whole graph instead of leaking it.
    auto teardown = [&]() {
        if (!manual) return;
        if (array_root.get() != kNullRef) {
            heap.free_object(array_root.get());
            array_root.set(kNullRef);
        }
        for (ObjRef ref = 1; ref < indegree.size(); ++ref) {
            if (indegree[ref] > 0) {
                heap.free_object(ref);
                indegree[ref] = 0;
            }
        }
    };

    {
        BITC_ASSIGN_OR_RETURN(ObjRef arr,
                              heap.allocate(node_count, node_count, 4));
        array_root.set(arr);
    }
    ObjRef array = array_root.get();

    for (uint32_t i = 0; i < node_count; ++i) {
        auto node = heap.allocate(fanout + 1, fanout, kNodeTag);
        if (!node.is_ok()) {
            teardown();
            return node.status();
        }
        heap.store(node.value(), fanout, i);
        inc(node.value());
        heap.store_ref(array, i, node.value());
    }

    for (uint64_t m = 0; m < mutations; ++m) {
        uint32_t i = static_cast<uint32_t>(rng.next_below(node_count));
        ObjRef node = heap.load_ref(array, i);
        if (rng.next_bool(0.1)) {
            // Replace the node wholesale; the old one may become garbage.
            auto fresh = heap.allocate(fanout + 1, fanout, kNodeTag);
            if (!fresh.is_ok()) {
                teardown();
                return fresh.status();
            }
            heap.store(fresh.value(), fanout, node_count + m);
            ObjRef old = node;
            inc(fresh.value());
            heap.store_ref(array, i, fresh.value());
            dec(old);
        } else {
            // Rewire one edge.
            uint32_t j = static_cast<uint32_t>(rng.next_below(fanout));
            uint32_t t = static_cast<uint32_t>(rng.next_below(node_count));
            ObjRef target = heap.load_ref(array, t);
            ObjRef old = heap.load_ref(node, j);
            inc(target);
            heap.store_ref(node, j, target);
            dec(old);
        }
        ++report.operations;
    }

    for (uint32_t i = 0; i < node_count; ++i) {
        ObjRef node = heap.load_ref(array, i);
        report.check_value += heap.load(node, fanout);
    }
    teardown();
    telemetry.finish(report);
    return report;
}

}  // namespace bitc::mem
