/**
 * @file
 * Object model shared by every managed-heap backend.
 *
 * All heaps in this module allocate *objects*: a one-word header followed
 * by N 64-bit slots.  Slots [0, num_refs) hold references (ObjRef ids);
 * slots [num_refs, num_slots) hold raw data.  This pointers-first layout
 * is what lets tracing collectors find children without per-type maps,
 * and mirrors how real runtimes (OCaml, early ML kits) lay objects out —
 * the representation regime Shapiro's fallacy F2 is about.
 *
 * Mutators address objects through a handle id (ObjRef), never a raw
 * pointer, so moving collectors can relocate objects by updating the
 * handle table.  Every backend pays the same one-indirection cost, which
 * keeps cross-backend comparisons fair.
 */
#ifndef BITC_MEMORY_OBJECT_MODEL_HPP
#define BITC_MEMORY_OBJECT_MODEL_HPP

#include <cstdint>

namespace bitc::mem {

/** Opaque object handle. 0 is the null reference. */
using ObjRef = uint32_t;

/** The null object reference. */
inline constexpr ObjRef kNullRef = 0;

/**
 * Packed object header.
 *
 * Layout (one 64-bit word):
 *   bits  0..23  num_slots  (total 64-bit slots in the payload)
 *   bits 24..47  num_refs   (leading slots that hold ObjRefs)
 *   bits 48..55  tag        (application type tag, opaque to the heap)
 *   bits 56..63  flags      (collector scratch: mark bits, generation...)
 */
struct ObjHeader {
    static constexpr uint64_t kSlotsMask = 0xffffffull;
    static constexpr int kRefsShift = 24;
    static constexpr int kTagShift = 48;
    static constexpr int kFlagsShift = 56;

    static uint64_t pack(uint32_t num_slots, uint32_t num_refs,
                         uint8_t tag) {
        return (static_cast<uint64_t>(num_slots) & kSlotsMask) |
               ((static_cast<uint64_t>(num_refs) & kSlotsMask)
                << kRefsShift) |
               (static_cast<uint64_t>(tag) << kTagShift);
    }

    static uint32_t num_slots(uint64_t header) {
        return static_cast<uint32_t>(header & kSlotsMask);
    }
    static uint32_t num_refs(uint64_t header) {
        return static_cast<uint32_t>((header >> kRefsShift) & kSlotsMask);
    }
    static uint8_t tag(uint64_t header) {
        return static_cast<uint8_t>((header >> kTagShift) & 0xff);
    }
    static uint8_t flags(uint64_t header) {
        return static_cast<uint8_t>(header >> kFlagsShift);
    }
    static uint64_t with_flags(uint64_t header, uint8_t flags) {
        return (header & ~(0xffull << kFlagsShift)) |
               (static_cast<uint64_t>(flags) << kFlagsShift);
    }
};

/** Collector flag bits stored in the header's flags byte. */
enum ObjFlags : uint8_t {
    kFlagMarked = 1u << 0,   ///< Tracing mark bit.
    kFlagRemembered = 1u << 1,///< In the generational remembered set.
    kFlagTenured = 1u << 2,  ///< Object lives in the old generation.
};

/** Words occupied by an object with @p num_slots payload slots. */
inline constexpr uint32_t
object_words(uint32_t num_slots)
{
    return 1 + num_slots;  // header + payload
}

}  // namespace bitc::mem

#endif  // BITC_MEMORY_OBJECT_MODEL_HPP
