#include "types/type.hpp"

#include <algorithm>

#include "support/string_util.hpp"

namespace bitc::types {

TypeStore::TypeStore()
{
    bool_ = make(TypeKind::kBool);
    unit_ = make(TypeKind::kUnit);
    int64_ = int_type(64, true);
}

Type*
TypeStore::make(TypeKind kind)
{
    pool_.push_back(std::make_unique<Type>());
    Type* t = pool_.back().get();
    t->kind = kind;
    return t;
}

Type*
TypeStore::int_type(uint32_t bits, bool is_signed)
{
    // Int types are small and freely duplicated; no interning needed.
    Type* t = make(TypeKind::kInt);
    t->bits = bits;
    t->is_signed = is_signed;
    return t;
}

Type*
TypeStore::array_type(Type* elem, int64_t size)
{
    Type* t = make(TypeKind::kArray);
    t->elem = elem;
    t->size = size;
    return t;
}

Type*
TypeStore::func_type(std::vector<Type*> params, Type* result)
{
    Type* t = make(TypeKind::kFunc);
    t->params = std::move(params);
    t->result = result;
    return t;
}

Type*
TypeStore::fresh_var(bool numeric)
{
    Type* t = make(TypeKind::kVar);
    t->var_id = next_var_id_++;
    t->numeric = numeric;
    return t;
}

Type*
TypeStore::prune(Type* type)
{
    if (type->kind == TypeKind::kVar && type->instance != nullptr) {
        type->instance = prune(type->instance);
        return type->instance;
    }
    return type;
}

bool
TypeStore::occurs_in(Type* var, Type* type)
{
    type = prune(type);
    if (type == var) return true;
    switch (type->kind) {
      case TypeKind::kArray:
        return occurs_in(var, type->elem);
      case TypeKind::kFunc:
        for (Type* p : type->params) {
            if (occurs_in(var, p)) return true;
        }
        return occurs_in(var, type->result);
      default:
        return false;
    }
}

Status
TypeStore::unify(Type* a, Type* b)
{
    a = prune(a);
    b = prune(b);
    if (a == b) return Status::ok();

    if (a->kind == TypeKind::kVar) {
        if (occurs_in(a, b)) {
            return type_error(
                str_format("infinite type: %s occurs in %s",
                           to_string(a).c_str(), to_string(b).c_str()));
        }
        // A numeric variable may bind only to integers or to other
        // variables (which then inherit the numeric constraint).
        if (a->numeric) {
            if (b->kind == TypeKind::kVar) {
                b->numeric = true;
            } else if (b->kind != TypeKind::kInt) {
                return type_error(
                    str_format("numeric type required, got %s",
                               to_string(b).c_str()));
            }
        }
        a->instance = b;
        return Status::ok();
    }
    if (b->kind == TypeKind::kVar) return unify(b, a);

    if (a->kind != b->kind) {
        return type_error(str_format("type mismatch: %s vs %s",
                                     to_string(a).c_str(),
                                     to_string(b).c_str()));
    }
    switch (a->kind) {
      case TypeKind::kBool:
      case TypeKind::kUnit:
        return Status::ok();
      case TypeKind::kInt:
        if (a->bits != b->bits || a->is_signed != b->is_signed) {
            return type_error(str_format("type mismatch: %s vs %s",
                                         to_string(a).c_str(),
                                         to_string(b).c_str()));
        }
        return Status::ok();
      case TypeKind::kArray:
        if (a->size != kUnknownSize && b->size != kUnknownSize &&
            a->size != b->size) {
            return type_error(str_format(
                "array length mismatch: %lld vs %lld",
                static_cast<long long>(a->size),
                static_cast<long long>(b->size)));
        }
        return unify(a->elem, b->elem);
      case TypeKind::kFunc: {
        if (a->params.size() != b->params.size()) {
            return type_error(str_format(
                "arity mismatch: %zu vs %zu parameters",
                a->params.size(), b->params.size()));
        }
        for (size_t i = 0; i < a->params.size(); ++i) {
            BITC_RETURN_IF_ERROR(unify(a->params[i], b->params[i]));
        }
        return unify(a->result, b->result);
      }
      case TypeKind::kVar:
        break;  // handled above
    }
    return internal_error("unreachable unify case");
}

void
TypeStore::default_free_vars(Type* type)
{
    type = prune(type);
    switch (type->kind) {
      case TypeKind::kVar:
        type->instance = type->numeric ? int64_ : unit_;
        return;
      case TypeKind::kArray:
        default_free_vars(type->elem);
        return;
      case TypeKind::kFunc:
        for (Type* p : type->params) default_free_vars(p);
        default_free_vars(type->result);
        return;
      default:
        return;
    }
}

void
TypeStore::free_vars(Type* type, std::vector<Type*>& out)
{
    type = prune(type);
    switch (type->kind) {
      case TypeKind::kVar:
        if (std::find(out.begin(), out.end(), type) == out.end()) {
            out.push_back(type);
        }
        return;
      case TypeKind::kArray:
        free_vars(type->elem, out);
        return;
      case TypeKind::kFunc:
        for (Type* p : type->params) free_vars(p, out);
        free_vars(type->result, out);
        return;
      default:
        return;
    }
}

Type*
TypeStore::instantiate_rec(Type* type,
                           std::vector<std::pair<Type*, Type*>>& mapping)
{
    type = prune(type);
    switch (type->kind) {
      case TypeKind::kVar: {
        for (const auto& [from, to] : mapping) {
            if (from == type) return to;
        }
        return type;  // free but not quantified: stays shared
      }
      case TypeKind::kArray:
        return array_type(instantiate_rec(type->elem, mapping),
                          type->size);
      case TypeKind::kFunc: {
        std::vector<Type*> params;
        params.reserve(type->params.size());
        for (Type* p : type->params) {
            params.push_back(instantiate_rec(p, mapping));
        }
        return func_type(std::move(params),
                         instantiate_rec(type->result, mapping));
      }
      default:
        return type;
    }
}

Type*
TypeStore::instantiate(const TypeScheme& scheme)
{
    std::vector<std::pair<Type*, Type*>> mapping;
    mapping.reserve(scheme.quantified.size());
    for (Type* q : scheme.quantified) {
        Type* pruned = prune(q);
        if (pruned->kind == TypeKind::kVar) {
            mapping.emplace_back(pruned, fresh_var(pruned->numeric));
        }
    }
    return instantiate_rec(scheme.body, mapping);
}

std::string
TypeStore::to_string(Type* type)
{
    type = prune(type);
    switch (type->kind) {
      case TypeKind::kInt:
        return str_format("%sint%u", type->is_signed ? "" : "u",
                          type->bits);
      case TypeKind::kBool: return "bool";
      case TypeKind::kUnit: return "unit";
      case TypeKind::kArray:
        if (type->size == kUnknownSize) {
            return str_format("(array %s ?)",
                              to_string(type->elem).c_str());
        }
        return str_format("(array %s %lld)",
                          to_string(type->elem).c_str(),
                          static_cast<long long>(type->size));
      case TypeKind::kFunc: {
        std::string out = "(->";
        for (Type* p : type->params) {
            out += ' ';
            out += to_string(p);
        }
        out += ' ';
        out += to_string(type->result);
        out += ')';
        return out;
      }
      case TypeKind::kVar:
        return str_format("'%s%u", type->numeric ? "n" : "a",
                          type->var_id);
    }
    return "?";
}

}  // namespace bitc::types
