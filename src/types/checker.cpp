#include "types/checker.hpp"

#include <cctype>

#include "lang/resolver.hpp"
#include "support/string_util.hpp"

namespace bitc::types {

using lang::Expr;
using lang::ExprKind;
using lang::FunctionDecl;
using lang::PrimOp;
using lang::TypeExpr;

namespace {

/** Parses "int32"/"uint13"/"bool"/"unit" into width/sign. */
bool
parse_named_type(const std::string& name, uint32_t* bits,
                 bool* is_signed)
{
    std::string_view digits;
    if (starts_with(name, "uint")) {
        *is_signed = false;
        digits = std::string_view(name).substr(4);
    } else if (starts_with(name, "int")) {
        *is_signed = true;
        digits = std::string_view(name).substr(3);
    } else {
        return false;
    }
    uint32_t width = 0;
    for (char c : digits) {
        if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
        width = width * 10 + static_cast<uint32_t>(c - '0');
    }
    if (width < 1 || width > 64) return false;
    if (*is_signed && width < 2) return false;
    *bits = width;
    return true;
}

/** True if @p value is representable in the integer type @p type. */
bool
literal_fits(int64_t value, const Type* type)
{
    if (type->bits == 64) {
        // int64 covers everything the lexer can produce; uint64
        // accepts the same bit patterns (negative literals wrap).
        return true;
    }
    if (type->is_signed) {
        int64_t lo = -(int64_t{1} << (type->bits - 1));
        int64_t hi = (int64_t{1} << (type->bits - 1)) - 1;
        return value >= lo && value <= hi;
    }
    if (value < 0) return false;
    uint64_t hi = (uint64_t{1} << type->bits) - 1;
    return static_cast<uint64_t>(value) <= hi;
}

}  // namespace

/** Walks the resolved AST, inferring and recording types. */
class TypeChecker {
  public:
    TypeChecker(TypedProgram& out, DiagnosticEngine& diags)
        : out_(out), store_(out.store_), diags_(diags) {}

    void run() {
        auto& functions = out_.program_.functions;

        // Assume a raw (ungeneralised) type for every function so
        // recursion and forward references check monomorphically.
        assumed_.reserve(functions.size());
        for (FunctionDecl& f : functions) {
            FunctionType ft;
            for (lang::Param& p : f.params) {
                ft.params.push_back(p.declared_type != nullptr
                                        ? convert(p.declared_type)
                                        : store_.fresh_var());
            }
            ft.result = f.declared_result != nullptr
                            ? convert(f.declared_result)
                            : store_.fresh_var();
            assumed_.push_back(ft);
            schemes_.push_back({});  // generalised later
            generalized_.push_back(false);
        }

        for (size_t i = 0; i < functions.size(); ++i) {
            check_function(i);
            generalize(i);
        }

        // Defaulting: remaining numeric vars become int64, others unit.
        for (auto& [expr, type] : out_.expr_types_) {
            store_.default_free_vars(type);
        }
        for (FunctionType& ft : assumed_) {
            for (Type* p : ft.params) store_.default_free_vars(p);
            store_.default_free_vars(ft.result);
        }
        out_.function_types_ = assumed_;

        // Literal range checking against the now-concrete types.
        for (const Expr* lit : literals_) {
            Type* t = out_.type_of(lit);
            if (t->kind == TypeKind::kInt &&
                !literal_fits(lit->int_value, t)) {
                diags_.error(lit->span,
                             str_format("literal %lld does not fit %s",
                                        static_cast<long long>(
                                            lit->int_value),
                                        store_.to_string(t).c_str()));
            }
        }
    }

  private:
    Type* convert(const TypeExpr* te) {
        switch (te->kind) {
          case TypeExpr::Kind::kNamed: {
            if (te->name == "bool") return store_.bool_type();
            if (te->name == "unit") return store_.unit_type();
            uint32_t bits = 0;
            bool is_signed = false;
            if (parse_named_type(te->name, &bits, &is_signed)) {
                return store_.int_type(bits, is_signed);
            }
            diags_.error(te->span,
                         str_format("unknown type '%s'",
                                    te->name.c_str()));
            return store_.fresh_var();
          }
          case TypeExpr::Kind::kArray:
            return store_.array_type(convert(te->elem), te->array_size);
          case TypeExpr::Kind::kFunc: {
            std::vector<Type*> params;
            for (const TypeExpr* p : te->params) {
                params.push_back(convert(p));
            }
            return store_.func_type(std::move(params),
                                    convert(te->result));
          }
        }
        return store_.fresh_var();
    }

    void check_function(size_t index) {
        FunctionDecl& f = out_.program_.functions[index];
        const FunctionType& ft = assumed_[index];

        locals_.assign(static_cast<size_t>(f.num_locals), nullptr);
        for (size_t i = 0; i < f.params.size(); ++i) {
            locals_[static_cast<size_t>(f.params[i].slot)] = ft.params[i];
        }
        result_type_ = ft.result;

        for (Expr* r : f.requires_clauses) {
            expect(r, store_.bool_type(), "require clause");
        }
        for (Expr* e : f.ensures_clauses) {
            expect(e, store_.bool_type(), "ensure clause");
        }

        Type* body_type = store_.unit_type();
        for (Expr* e : f.body) body_type = infer(e);
        unify_or_report(body_type, ft.result, f.span,
                        "function body vs declared result");
    }

    void generalize(size_t index) {
        // Quantify variables free in this function's type but not in
        // any other not-yet-generalised function's assumed type (those
        // may still be constrained by later bodies).
        std::vector<Type*> candidates;
        Type* self = store_.func_type(assumed_[index].params,
                                      assumed_[index].result);
        store_.free_vars(self, candidates);
        std::vector<Type*> pinned;
        for (size_t j = 0; j < assumed_.size(); ++j) {
            if (j == index || generalized_[j]) continue;
            for (Type* p : assumed_[j].params) store_.free_vars(p, pinned);
            store_.free_vars(assumed_[j].result, pinned);
        }
        TypeScheme scheme;
        for (Type* v : candidates) {
            bool is_pinned = false;
            for (Type* p : pinned) {
                if (store_.prune(p) == v) {
                    is_pinned = true;
                    break;
                }
            }
            if (!is_pinned) scheme.quantified.push_back(v);
        }
        scheme.body = self;
        schemes_[index] = scheme;
        generalized_[index] = true;
    }

    Type* record(const Expr* e, Type* t) {
        out_.expr_types_[e] = t;
        return t;
    }

    void unify_or_report(Type* a, Type* b, SourceSpan span,
                         const char* context) {
        Status s = store_.unify(a, b);
        if (!s.is_ok()) {
            diags_.error(span, str_format("%s (%s)", s.message().c_str(),
                                          context));
        }
    }

    Type* expect(Expr* e, Type* want, const char* context) {
        Type* got = infer(e);
        unify_or_report(got, want, e->span, context);
        return got;
    }

    Type* infer(Expr* e) {
        switch (e->kind) {
          case ExprKind::kIntLit: {
            literals_.push_back(e);
            return record(e, store_.fresh_var(/*numeric=*/true));
          }
          case ExprKind::kBoolLit:
            return record(e, store_.bool_type());
          case ExprKind::kUnitLit:
            return record(e, store_.unit_type());
          case ExprKind::kVar: {
            if (e->local_slot == lang::kResultSlot) {
                return record(e, result_type_);
            }
            if (e->local_slot < 0) return record(e, store_.fresh_var());
            return record(
                e, locals_[static_cast<size_t>(e->local_slot)]);
          }
          case ExprKind::kPrim:
            return record(e, infer_prim(e));
          case ExprKind::kCall:
            return record(e, infer_call(e));
          case ExprKind::kIf: {
            expect(e->args[0], store_.bool_type(), "if condition");
            Type* then_type = infer(e->args[1]);
            Type* else_type = infer(e->args[2]);
            unify_or_report(then_type, else_type, e->span,
                            "if branches");
            return record(e, then_type);
          }
          case ExprKind::kLet: {
            for (lang::LetBinding& b : e->bindings) {
                Type* init_type = infer(b.init);
                if (b.declared_type != nullptr) {
                    unify_or_report(init_type, convert(b.declared_type),
                                    b.init->span, "let annotation");
                }
                locals_[static_cast<size_t>(b.slot)] = init_type;
            }
            Type* last = store_.unit_type();
            for (Expr* item : e->body) last = infer(item);
            return record(e, last);
          }
          case ExprKind::kBegin: {
            Type* last = store_.unit_type();
            for (Expr* item : e->args) last = infer(item);
            return record(e, last);
          }
          case ExprKind::kWhile: {
            expect(e->args[0], store_.bool_type(), "while condition");
            for (Expr* inv : e->invariants) {
                expect(inv, store_.bool_type(), "loop invariant");
            }
            for (Expr* item : e->body) infer(item);
            return record(e, store_.unit_type());
          }
          case ExprKind::kSet: {
            Type* value_type = infer(e->args[0]);
            if (e->local_slot >= 0) {
                unify_or_report(
                    value_type,
                    locals_[static_cast<size_t>(e->local_slot)], e->span,
                    "set! value vs variable");
            }
            return record(e, store_.unit_type());
          }
          case ExprKind::kAssert:
            expect(e->args[0], store_.bool_type(), "assert condition");
            return record(e, store_.unit_type());
          case ExprKind::kArrayMake: {
            expect(e->args[0], store_.fresh_var(/*numeric=*/true),
                   "array length");
            Type* elem = infer(e->args[1]);
            int64_t size = kUnknownSize;
            if (e->args[0]->kind == ExprKind::kIntLit) {
                size = e->args[0]->int_value;
            }
            return record(e, store_.array_type(elem, size));
          }
          case ExprKind::kArrayRef: {
            Type* elem = store_.fresh_var();
            expect(e->args[0],
                   store_.array_type(elem, kUnknownSize), "array-ref");
            expect(e->args[1], store_.fresh_var(/*numeric=*/true),
                   "array index");
            return record(e, elem);
          }
          case ExprKind::kArraySet: {
            Type* elem = store_.fresh_var();
            expect(e->args[0],
                   store_.array_type(elem, kUnknownSize), "array-set!");
            expect(e->args[1], store_.fresh_var(/*numeric=*/true),
                   "array index");
            expect(e->args[2], elem, "array-set! value");
            return record(e, store_.unit_type());
          }
          case ExprKind::kArrayLen: {
            Type* elem = store_.fresh_var();
            expect(e->args[0],
                   store_.array_type(elem, kUnknownSize), "array-len");
            return record(e, store_.int64_type());
          }
          case ExprKind::kNative: {
            // The C ABI boundary: words in, word out. Arguments must
            // be integers; the result is an inferred integer.
            for (Expr* a : e->args) {
                expect(a, store_.fresh_var(/*numeric=*/true),
                       "native argument");
            }
            return record(e, store_.fresh_var(/*numeric=*/true));
          }
        }
        return record(e, store_.unit_type());
    }

    Type* infer_prim(Expr* e) {
        switch (e->prim) {
          case PrimOp::kAdd: case PrimOp::kSub: case PrimOp::kMul:
          case PrimOp::kDiv: case PrimOp::kRem:
          case PrimOp::kBitAnd: case PrimOp::kBitOr:
          case PrimOp::kBitXor: case PrimOp::kShl: case PrimOp::kShr: {
            Type* t = store_.fresh_var(/*numeric=*/true);
            expect(e->args[0], t, "arithmetic operand");
            expect(e->args[1], t, "arithmetic operand");
            return t;
          }
          case PrimOp::kNeg: {
            Type* t = store_.fresh_var(/*numeric=*/true);
            expect(e->args[0], t, "negation operand");
            return t;
          }
          case PrimOp::kLt: case PrimOp::kLe:
          case PrimOp::kGt: case PrimOp::kGe:
          case PrimOp::kEq: case PrimOp::kNe: {
            Type* t = store_.fresh_var(/*numeric=*/true);
            expect(e->args[0], t, "comparison operand");
            expect(e->args[1], t, "comparison operand");
            return store_.bool_type();
          }
          case PrimOp::kAnd: case PrimOp::kOr: {
            expect(e->args[0], store_.bool_type(), "logical operand");
            expect(e->args[1], store_.bool_type(), "logical operand");
            return store_.bool_type();
          }
          case PrimOp::kNot:
            expect(e->args[0], store_.bool_type(), "not operand");
            return store_.bool_type();
        }
        return store_.unit_type();
    }

    Type* infer_call(Expr* e) {
        if (e->callee_index < 0) return store_.fresh_var();
        size_t callee = static_cast<size_t>(e->callee_index);
        Type* callee_type;
        if (generalized_[callee]) {
            callee_type = store_.instantiate(schemes_[callee]);
        } else {
            callee_type = store_.func_type(assumed_[callee].params,
                                           assumed_[callee].result);
        }
        std::vector<Type*> arg_types;
        arg_types.reserve(e->args.size());
        for (Expr* a : e->args) arg_types.push_back(infer(a));
        Type* result = store_.fresh_var();
        unify_or_report(callee_type,
                        store_.func_type(std::move(arg_types), result),
                        e->span, "call");
        return result;
    }

    TypedProgram& out_;
    TypeStore& store_;
    DiagnosticEngine& diags_;
    std::vector<FunctionType> assumed_;
    std::vector<TypeScheme> schemes_;
    std::vector<bool> generalized_;
    std::vector<Type*> locals_;
    Type* result_type_ = nullptr;
    std::vector<const Expr*> literals_;
};

Result<TypedProgram>
check_program(lang::Program program, DiagnosticEngine& diags)
{
    TypedProgram typed;
    typed.program_ = std::move(program);
    TypeChecker checker(typed, diags);
    checker.run();
    if (diags.has_errors()) {
        return type_error(diags.first_error());
    }
    return typed;
}

}  // namespace bitc::types
