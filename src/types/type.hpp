/**
 * @file
 * Semantic types and unification for the BitC-like language.
 *
 * The type language is the paper's target fragment: bit-precise
 * integers (int2..int64, uint1..uint64), bool, unit, fixed-size arrays
 * and first-order function types, plus inference variables.  Numeric
 * literals and arithmetic use *numeric* type variables — variables that
 * may only ever unify with integer types — giving ML-style inference
 * over C-style representation types without full type classes (the
 * BitC compromise).
 */
#ifndef BITC_TYPES_TYPE_HPP
#define BITC_TYPES_TYPE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace bitc::types {

enum class TypeKind : uint8_t {
    kInt,
    kBool,
    kUnit,
    kArray,
    kFunc,
    kVar,
};

/** Size of an array whose length is not statically known. */
inline constexpr int64_t kUnknownSize = -1;

/**
 * A type term.  Allocate only through TypeStore; nodes are mutated
 * during unification (kVar instance binding) and must not be shared
 * across stores.
 */
struct Type {
    TypeKind kind = TypeKind::kUnit;

    // kInt
    uint32_t bits = 0;
    bool is_signed = false;

    // kArray
    Type* elem = nullptr;
    int64_t size = kUnknownSize;

    // kFunc
    std::vector<Type*> params;
    Type* result = nullptr;

    // kVar
    uint32_t var_id = 0;
    bool numeric = false;    ///< May only unify with integer types.
    Type* instance = nullptr;  ///< Union-find binding (null = free).
};

/** A polymorphic type: quantified variable nodes plus a body. */
struct TypeScheme {
    std::vector<Type*> quantified;
    Type* body = nullptr;
};

/**
 * Allocates and unifies types for one program.  Owns every node it
 * creates; node addresses are stable for the store's lifetime.
 */
class TypeStore {
  public:
    TypeStore();
    TypeStore(TypeStore&&) = default;
    TypeStore& operator=(TypeStore&&) = default;

    Type* int_type(uint32_t bits, bool is_signed);
    Type* int64_type() { return int64_; }
    Type* bool_type() { return bool_; }
    Type* unit_type() { return unit_; }
    Type* array_type(Type* elem, int64_t size);
    Type* func_type(std::vector<Type*> params, Type* result);
    Type* fresh_var(bool numeric = false);

    /** Follows and compresses instance chains; never returns a bound var. */
    Type* prune(Type* type);

    /** True if the pruned @p var occurs inside @p type (occurs check). */
    bool occurs_in(Type* var, Type* type);

    /**
     * Makes the two types equal, binding variables as needed.  On
     * failure returns kTypeError with a rendered mismatch message and
     * leaves the store in a partially-unified state (callers abort the
     * pipeline on error, so no rollback machinery is needed).
     */
    Status unify(Type* a, Type* b);

    /**
     * Replaces every free variable with its default: numeric vars
     * become int64, other vars unit.  Called once after inference so
     * downstream passes see only concrete types.
     */
    void default_free_vars(Type* type);

    /** Instantiates a scheme with fresh variables. */
    Type* instantiate(const TypeScheme& scheme);

    /** Collects the free (unbound) variables reachable from @p type. */
    void free_vars(Type* type, std::vector<Type*>& out);

    /** "int32", "(array int8 10)", "(-> int64 int64)", "'a", "'n#". */
    std::string to_string(Type* type);

  private:
    Type* make(TypeKind kind);
    Type* instantiate_rec(Type* type,
                          std::vector<std::pair<Type*, Type*>>& mapping);

    std::vector<std::unique_ptr<Type>> pool_;
    uint32_t next_var_id_ = 0;
    Type* bool_ = nullptr;
    Type* unit_ = nullptr;
    Type* int64_ = nullptr;
};

}  // namespace bitc::types

#endif  // BITC_TYPES_TYPE_HPP
