/**
 * @file
 * Type checker / inferencer for the BitC-like language.
 *
 * Hindley–Milner let-polymorphism at the top level (functions are
 * generalised in definition order; recursion and forward references
 * are monomorphic, as in the ML value restriction tradition), with
 * bit-precise integer types flowing from annotations and numeric
 * variables defaulting to int64.
 */
#ifndef BITC_TYPES_CHECKER_HPP
#define BITC_TYPES_CHECKER_HPP

#include <unordered_map>
#include <vector>

#include "lang/ast.hpp"
#include "support/diagnostics.hpp"
#include "support/status.hpp"
#include "types/type.hpp"

namespace bitc::types {

/** A function's checked signature. */
struct FunctionType {
    std::vector<Type*> params;
    Type* result = nullptr;
};

/**
 * A type-checked program: the AST plus the store that owns its types
 * and a side table typing every expression.  Move-only.
 */
class TypedProgram {
  public:
    TypedProgram() = default;
    TypedProgram(TypedProgram&&) = default;
    TypedProgram& operator=(TypedProgram&&) = default;

    const lang::Program& program() const { return program_; }
    lang::Program& program() { return program_; }
    TypeStore& store() { return store_; }

    /** Concrete (post-defaulting) type of an expression node. */
    Type* type_of(const lang::Expr* expr) {
        auto it = expr_types_.find(expr);
        return it == expr_types_.end() ? store_.unit_type()
                                       : store_.prune(it->second);
    }

    const FunctionType& function_type(size_t index) const {
        return function_types_[index];
    }
    size_t function_count() const { return function_types_.size(); }

  private:
    friend class TypeChecker;
    friend Result<TypedProgram> check_program(lang::Program program,
                                              DiagnosticEngine& diags);

    lang::Program program_;
    TypeStore store_;
    std::unordered_map<const lang::Expr*, Type*> expr_types_;
    std::vector<FunctionType> function_types_;
};

/**
 * Checks @p program (which must already be resolved), consuming it.
 * Diagnostics go to @p diags; the Result is an error iff errors were
 * reported.
 */
Result<TypedProgram> check_program(lang::Program program,
                                   DiagnosticEngine& diags);

}  // namespace bitc::types

#endif  // BITC_TYPES_CHECKER_HPP
