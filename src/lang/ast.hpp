/**
 * @file
 * Abstract syntax of the BitC-like language.
 *
 * The language is deliberately the paper's target fragment: first-order
 * functions over bit-precise integers, booleans, unit and fixed-size
 * arrays, with mutation (set!, array-set!), while loops, and contract
 * clauses (require / ensure / invariant / assert) feeding the verifier.
 * Surface syntax is S-expressions; see parser.hpp for the grammar.
 */
#ifndef BITC_LANG_AST_HPP
#define BITC_LANG_AST_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace bitc::lang {

/** Built-in operators. */
enum class PrimOp : uint8_t {
    kAdd, kSub, kMul, kDiv, kRem,
    kLt, kLe, kGt, kGe, kEq, kNe,
    kAnd, kOr, kNot,
    kBitAnd, kBitOr, kBitXor, kShl, kShr,
    kNeg,
};

const char* prim_op_name(PrimOp op);

/** Surface type expression, before checking. */
struct TypeExpr {
    enum class Kind : uint8_t { kNamed, kArray, kFunc };

    Kind kind = Kind::kNamed;
    SourceSpan span;
    std::string name;                   ///< kNamed: "int32", "uint13"...
    const TypeExpr* elem = nullptr;     ///< kArray element type.
    int64_t array_size = 0;             ///< kArray length.
    std::vector<const TypeExpr*> params;  ///< kFunc parameters.
    const TypeExpr* result = nullptr;   ///< kFunc result.

    std::string to_string() const;
};

/** AST node kinds. */
enum class ExprKind : uint8_t {
    kIntLit,
    kBoolLit,
    kUnitLit,
    kVar,
    kPrim,
    kCall,
    kIf,
    kLet,
    kBegin,
    kWhile,
    kSet,
    kAssert,
    kArrayMake,
    kArrayRef,
    kArraySet,
    kArrayLen,
    kNative,  ///< (native name arg...): FFI call through the registry
};

const char* expr_kind_name(ExprKind kind);

struct Expr;

/** One binding in a let form. */
struct LetBinding {
    std::string name;
    const TypeExpr* declared_type = nullptr;  ///< optional annotation
    Expr* init = nullptr;
    int slot = -1;  ///< local slot, filled by the resolver
};

/**
 * Expression node.  A single struct with kind-dependent fields keeps
 * the consumers (checker, verifier, compiler) switch-based and flat,
 * which is the dominant access pattern.
 */
struct Expr {
    ExprKind kind = ExprKind::kUnitLit;
    SourceSpan span;

    int64_t int_value = 0;    ///< kIntLit
    bool bool_value = false;  ///< kBoolLit

    std::string name;  ///< kVar, kSet (target), kCall (callee)

    PrimOp prim = PrimOp::kAdd;  ///< kPrim

    /**
     * Children, by kind:
     *  kPrim/kCall: arguments
     *  kIf: {condition, then, else}
     *  kBegin: sequence
     *  kWhile: {condition}, body in `body`
     *  kSet: {value}
     *  kAssert: {condition}
     *  kArrayMake: {length, fill}
     *  kArrayRef: {array, index}
     *  kArraySet: {array, index, value}
     *  kArrayLen: {array}
     */
    std::vector<Expr*> args;

    std::vector<LetBinding> bindings;  ///< kLet
    std::vector<Expr*> body;           ///< kLet, kWhile
    std::vector<Expr*> invariants;     ///< kWhile loop invariants

    // --- Resolver annotations -----------------------------------------
    int local_slot = -1;     ///< kVar/kSet: slot of the local/param.
    int callee_index = -1;   ///< kCall: index into Program::functions.

    /** S-expression rendering (post-parse canonical form). */
    std::string to_string() const;
};

/** Formal parameter of a function. */
struct Param {
    std::string name;
    const TypeExpr* declared_type = nullptr;  ///< optional annotation
    SourceSpan span;
    int slot = -1;  ///< filled by the resolver (== parameter index)
};

/** Top-level function definition. */
struct FunctionDecl {
    std::string name;
    SourceSpan span;
    std::vector<Param> params;
    const TypeExpr* declared_result = nullptr;  ///< optional annotation
    std::vector<Expr*> requires_clauses;  ///< preconditions
    std::vector<Expr*> ensures_clauses;   ///< postconditions ('result')
    std::vector<Expr*> body;              ///< implicit begin

    int num_locals = -1;  ///< total slots after resolution
};

/** Owns every AST node of one compilation unit. */
class AstArena {
  public:
    Expr* make_expr(ExprKind kind, SourceSpan span);
    TypeExpr* make_type(TypeExpr::Kind kind, SourceSpan span);

  private:
    std::vector<std::unique_ptr<Expr>> exprs_;
    std::vector<std::unique_ptr<TypeExpr>> types_;
};

/** A parsed compilation unit. */
struct Program {
    std::shared_ptr<AstArena> arena;  ///< keeps nodes alive
    std::vector<FunctionDecl> functions;

    /** Index of function @p name, or -1. */
    int find_function(const std::string& name) const;

    std::string to_string() const;
};

/** The name the ensure clause uses for the function's return value. */
inline constexpr const char* kResultName = "result";

}  // namespace bitc::lang

#endif  // BITC_LANG_AST_HPP
