#include "lang/resolver.hpp"

#include <unordered_map>
#include <vector>

#include "support/string_util.hpp"

namespace bitc::lang {

namespace {

/** Lexical scope stack mapping names to slots. */
class Scopes {
  public:
    void push() { frames_.emplace_back(); }
    void pop() { frames_.pop_back(); }

    void bind(const std::string& name, int slot) {
        frames_.back()[name] = slot;
    }

    /** Innermost binding, or -1. */
    int lookup(const std::string& name) const {
        for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end()) return found->second;
        }
        return -1;
    }

    bool bound_in_current(const std::string& name) const {
        return frames_.back().contains(name);
    }

  private:
    std::vector<std::unordered_map<std::string, int>> frames_;
};

class Resolver {
  public:
    Resolver(Program& program, DiagnosticEngine& diags)
        : program_(program), diags_(diags) {}

    void run() {
        // Pass 1: collect function names (forward references allowed).
        for (size_t i = 0; i < program_.functions.size(); ++i) {
            const std::string& name = program_.functions[i].name;
            if (function_index_.contains(name)) {
                diags_.error(program_.functions[i].span,
                             str_format("duplicate function '%s'",
                                        name.c_str()));
                continue;
            }
            function_index_[name] = static_cast<int>(i);
        }
        // Pass 2: resolve each body.
        for (FunctionDecl& f : program_.functions) resolve_function(f);
    }

  private:
    void resolve_function(FunctionDecl& f) {
        next_slot_ = 0;
        scopes_ = Scopes();
        scopes_.push();
        for (Param& p : f.params) {
            if (scopes_.bound_in_current(p.name)) {
                diags_.error(p.span,
                             str_format("duplicate parameter '%s'",
                                        p.name.c_str()));
                continue;
            }
            p.slot = next_slot_++;
            scopes_.bind(p.name, p.slot);
        }
        for (Expr* r : f.requires_clauses) resolve_expr(r);
        // 'result' is visible only inside ensure clauses.
        scopes_.push();
        scopes_.bind(kResultName, kResultSlot);
        for (Expr* e : f.ensures_clauses) resolve_expr(e);
        scopes_.pop();
        for (Expr* e : f.body) resolve_expr(e);
        scopes_.pop();
        f.num_locals = next_slot_;
    }

    void resolve_expr(Expr* e) {
        switch (e->kind) {
          case ExprKind::kIntLit:
          case ExprKind::kBoolLit:
          case ExprKind::kUnitLit:
            return;
          case ExprKind::kVar: {
            int slot = scopes_.lookup(e->name);
            if (slot == -1) {
                // A bare function name is not a value in this language.
                if (function_index_.contains(e->name)) {
                    diags_.error(
                        e->span,
                        str_format("function '%s' used as a value "
                                   "(first-class functions are not "
                                   "supported)",
                                   e->name.c_str()));
                } else {
                    diags_.error(e->span,
                                 str_format("unbound identifier '%s'",
                                            e->name.c_str()));
                }
                return;
            }
            e->local_slot = slot;
            return;
          }
          case ExprKind::kSet: {
            int slot = scopes_.lookup(e->name);
            if (slot == -1) {
                diags_.error(e->span,
                             str_format("set! of unbound identifier '%s'",
                                        e->name.c_str()));
            } else if (slot == kResultSlot) {
                diags_.error(e->span, "'result' is read-only");
            } else {
                e->local_slot = slot;
            }
            resolve_expr(e->args[0]);
            return;
          }
          case ExprKind::kCall: {
            auto it = function_index_.find(e->name);
            if (it == function_index_.end()) {
                diags_.error(e->span,
                             str_format("call to unknown function '%s'",
                                        e->name.c_str()));
            } else {
                e->callee_index = it->second;
                const FunctionDecl& callee =
                    program_.functions[it->second];
                if (callee.params.size() != e->args.size()) {
                    diags_.error(
                        e->span,
                        str_format("'%s' takes %zu argument(s), got %zu",
                                   e->name.c_str(), callee.params.size(),
                                   e->args.size()));
                }
            }
            for (Expr* a : e->args) resolve_expr(a);
            return;
          }
          case ExprKind::kLet: {
            scopes_.push();
            for (LetBinding& b : e->bindings) {
                // Init is resolved in the outer scope (no recursion).
                resolve_expr(b.init);
                b.slot = next_slot_++;
                scopes_.bind(b.name, b.slot);
            }
            for (Expr* item : e->body) resolve_expr(item);
            scopes_.pop();
            return;
          }
          case ExprKind::kWhile:
            resolve_expr(e->args[0]);
            for (Expr* inv : e->invariants) resolve_expr(inv);
            for (Expr* item : e->body) resolve_expr(item);
            return;
          default:
            for (Expr* a : e->args) resolve_expr(a);
            return;
        }
    }

    Program& program_;
    DiagnosticEngine& diags_;
    std::unordered_map<std::string, int> function_index_;
    Scopes scopes_;
    int next_slot_ = 0;
};

}  // namespace

Status
resolve_program(Program& program, DiagnosticEngine& diags)
{
    Resolver(program, diags).run();
    if (diags.has_errors()) {
        return parse_error(diags.first_error());
    }
    return Status::ok();
}

}  // namespace bitc::lang
