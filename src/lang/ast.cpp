#include "lang/ast.hpp"

#include "support/string_util.hpp"

namespace bitc::lang {

const char*
prim_op_name(PrimOp op)
{
    switch (op) {
      case PrimOp::kAdd: return "+";
      case PrimOp::kSub: return "-";
      case PrimOp::kMul: return "*";
      case PrimOp::kDiv: return "/";
      case PrimOp::kRem: return "%";
      case PrimOp::kLt: return "<";
      case PrimOp::kLe: return "<=";
      case PrimOp::kGt: return ">";
      case PrimOp::kGe: return ">=";
      case PrimOp::kEq: return "==";
      case PrimOp::kNe: return "!=";
      case PrimOp::kAnd: return "and";
      case PrimOp::kOr: return "or";
      case PrimOp::kNot: return "not";
      case PrimOp::kBitAnd: return "bitand";
      case PrimOp::kBitOr: return "bitor";
      case PrimOp::kBitXor: return "bitxor";
      case PrimOp::kShl: return "<<";
      case PrimOp::kShr: return ">>";
      case PrimOp::kNeg: return "neg";
    }
    return "?";
}

const char*
expr_kind_name(ExprKind kind)
{
    switch (kind) {
      case ExprKind::kIntLit: return "int";
      case ExprKind::kBoolLit: return "bool";
      case ExprKind::kUnitLit: return "unit";
      case ExprKind::kVar: return "var";
      case ExprKind::kPrim: return "prim";
      case ExprKind::kCall: return "call";
      case ExprKind::kIf: return "if";
      case ExprKind::kLet: return "let";
      case ExprKind::kBegin: return "begin";
      case ExprKind::kWhile: return "while";
      case ExprKind::kSet: return "set!";
      case ExprKind::kAssert: return "assert";
      case ExprKind::kArrayMake: return "array-make";
      case ExprKind::kArrayRef: return "array-ref";
      case ExprKind::kArraySet: return "array-set!";
      case ExprKind::kArrayLen: return "array-len";
      case ExprKind::kNative: return "native";
    }
    return "?";
}

std::string
TypeExpr::to_string() const
{
    switch (kind) {
      case Kind::kNamed: return name;
      case Kind::kArray:
        return str_format("(array %s %lld)", elem->to_string().c_str(),
                          static_cast<long long>(array_size));
      case Kind::kFunc: {
        std::string out = "(->";
        for (const TypeExpr* p : params) {
            out += ' ';
            out += p->to_string();
        }
        out += ' ';
        out += result->to_string();
        out += ')';
        return out;
      }
    }
    return "?";
}

namespace {

void
append_exprs(std::string& out, const std::vector<Expr*>& exprs)
{
    for (const Expr* e : exprs) {
        out += ' ';
        out += e->to_string();
    }
}

}  // namespace

std::string
Expr::to_string() const
{
    switch (kind) {
      case ExprKind::kIntLit: return std::to_string(int_value);
      case ExprKind::kBoolLit: return bool_value ? "#t" : "#f";
      case ExprKind::kUnitLit: return "(unit)";
      case ExprKind::kVar: return name;
      case ExprKind::kPrim: {
        std::string out = "(";
        out += prim_op_name(prim);
        append_exprs(out, args);
        out += ')';
        return out;
      }
      case ExprKind::kCall: {
        std::string out = "(" + name;
        append_exprs(out, args);
        out += ')';
        return out;
      }
      case ExprKind::kIf: {
        std::string out = "(if";
        append_exprs(out, args);
        out += ')';
        return out;
      }
      case ExprKind::kLet: {
        std::string out = "(let (";
        for (size_t i = 0; i < bindings.size(); ++i) {
            if (i != 0) out += ' ';
            out += '(' + bindings[i].name + ' ' +
                   bindings[i].init->to_string() + ')';
        }
        out += ')';
        append_exprs(out, body);
        out += ')';
        return out;
      }
      case ExprKind::kBegin: {
        std::string out = "(begin";
        append_exprs(out, args);
        out += ')';
        return out;
      }
      case ExprKind::kWhile: {
        std::string out = "(while " + args[0]->to_string();
        for (const Expr* inv : invariants) {
            out += " (invariant " + inv->to_string() + ")";
        }
        append_exprs(out, body);
        out += ')';
        return out;
      }
      case ExprKind::kSet:
        return "(set! " + name + " " + args[0]->to_string() + ")";
      case ExprKind::kAssert:
        return "(assert " + args[0]->to_string() + ")";
      case ExprKind::kNative: {
        std::string out = "(native " + name;
        append_exprs(out, args);
        out += ')';
        return out;
      }
      case ExprKind::kArrayMake:
      case ExprKind::kArrayRef:
      case ExprKind::kArraySet:
      case ExprKind::kArrayLen: {
        std::string out = "(";
        out += expr_kind_name(kind);
        append_exprs(out, args);
        out += ')';
        return out;
      }
    }
    return "?";
}

Expr*
AstArena::make_expr(ExprKind kind, SourceSpan span)
{
    exprs_.push_back(std::make_unique<Expr>());
    Expr* e = exprs_.back().get();
    e->kind = kind;
    e->span = span;
    return e;
}

TypeExpr*
AstArena::make_type(TypeExpr::Kind kind, SourceSpan span)
{
    types_.push_back(std::make_unique<TypeExpr>());
    TypeExpr* t = types_.back().get();
    t->kind = kind;
    t->span = span;
    return t;
}

int
Program::find_function(const std::string& name) const
{
    for (size_t i = 0; i < functions.size(); ++i) {
        if (functions[i].name == name) return static_cast<int>(i);
    }
    return -1;
}

std::string
Program::to_string() const
{
    std::string out;
    for (const FunctionDecl& f : functions) {
        out += "(define (" + f.name;
        for (const Param& p : f.params) {
            out += ' ' + p.name;
            if (p.declared_type != nullptr) {
                out += " : " + p.declared_type->to_string();
            }
        }
        out += ')';
        if (f.declared_result != nullptr) {
            out += " : " + f.declared_result->to_string();
        }
        for (const Expr* r : f.requires_clauses) {
            out += " (require " + r->to_string() + ")";
        }
        for (const Expr* e : f.ensures_clauses) {
            out += " (ensure " + e->to_string() + ")";
        }
        for (const Expr* e : f.body) {
            out += ' ' + e->to_string();
        }
        out += ")\n";
    }
    return out;
}

}  // namespace bitc::lang
