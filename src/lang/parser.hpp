/**
 * @file
 * Parser: S-expressions -> AST.
 *
 * Grammar (S-expression shaped):
 *
 *   program   := define*
 *   define    := (define (NAME param*) [":" type] clause* expr+)
 *   param     := NAME | NAME ":" type
 *   clause    := (require expr) | (ensure expr)
 *   type      := int8..int64 | uintN | intN | bool | unit
 *              | (array type INT)
 *   expr      := INT | #t | #f | NAME
 *              | (PRIM expr*)                    ; + - * / % < <= ...
 *              | (NAME expr*)                    ; call
 *              | (if expr expr [expr])
 *              | (let ((NAME [":" type] expr)*) expr+)
 *              | (begin expr+)
 *              | (while expr (invariant expr)* expr*)
 *              | (set! NAME expr)
 *              | (assert expr)
 *              | (array-make expr expr)
 *              | (array-ref expr expr)
 *              | (array-set! expr expr expr)
 *              | (array-len expr)
 *              | (unit)
 */
#ifndef BITC_LANG_PARSER_HPP
#define BITC_LANG_PARSER_HPP

#include <string_view>

#include "lang/ast.hpp"
#include "support/diagnostics.hpp"
#include "support/status.hpp"

namespace bitc::lang {

/**
 * Parses @p source into a Program.  All lexical/syntactic problems go
 * to @p diags; the returned Result is an error iff diags has errors.
 */
Result<Program> parse_program(std::string_view source,
                              DiagnosticEngine& diags);

}  // namespace bitc::lang

#endif  // BITC_LANG_PARSER_HPP
