/**
 * @file
 * Name resolution: binds variable uses to local slots and calls to
 * function indices, assigns let-binding slots, and rejects unbound or
 * duplicate names.  Runs between parsing and type checking.
 */
#ifndef BITC_LANG_RESOLVER_HPP
#define BITC_LANG_RESOLVER_HPP

#include "lang/ast.hpp"
#include "support/diagnostics.hpp"
#include "support/status.hpp"

namespace bitc::lang {

/** Sentinel slot for the 'result' pseudo-variable in ensure clauses. */
inline constexpr int kResultSlot = -2;

/**
 * Resolves @p program in place.  On success every kVar/kSet has a
 * local_slot, every kCall a callee_index, and every FunctionDecl a
 * num_locals.  Diagnostics go to @p diags; returns an error Status iff
 * any were errors.
 */
Status resolve_program(Program& program, DiagnosticEngine& diags);

}  // namespace bitc::lang

#endif  // BITC_LANG_RESOLVER_HPP
