#include "lang/sexpr.hpp"

namespace bitc::lang {

std::string
SExpr::to_string() const
{
    switch (kind) {
      case SExprKind::kSymbol: return std::string(symbol);
      case SExprKind::kInt: return std::to_string(int_value);
      case SExprKind::kBool: return int_value != 0 ? "#t" : "#f";
      case SExprKind::kList: {
        std::string out = "(";
        for (size_t i = 0; i < items.size(); ++i) {
            if (i != 0) out += ' ';
            out += items[i]->to_string();
        }
        out += ')';
        return out;
      }
    }
    return "?";
}

SExpr*
SExprPool::make_symbol(SourceSpan span, std::string_view text)
{
    strings_.push_back(std::make_unique<std::string>(text));
    nodes_.push_back(std::make_unique<SExpr>());
    SExpr* node = nodes_.back().get();
    node->kind = SExprKind::kSymbol;
    node->span = span;
    node->symbol = *strings_.back();
    return node;
}

SExpr*
SExprPool::make_int(SourceSpan span, int64_t value)
{
    nodes_.push_back(std::make_unique<SExpr>());
    SExpr* node = nodes_.back().get();
    node->kind = SExprKind::kInt;
    node->span = span;
    node->int_value = value;
    return node;
}

SExpr*
SExprPool::make_bool(SourceSpan span, bool value)
{
    nodes_.push_back(std::make_unique<SExpr>());
    SExpr* node = nodes_.back().get();
    node->kind = SExprKind::kBool;
    node->span = span;
    node->int_value = value ? 1 : 0;
    return node;
}

SExpr*
SExprPool::make_list(SourceSpan span)
{
    nodes_.push_back(std::make_unique<SExpr>());
    SExpr* node = nodes_.back().get();
    node->kind = SExprKind::kList;
    node->span = span;
    return node;
}

namespace {

class Reader {
  public:
    Reader(const std::vector<Token>& tokens, SExprPool& pool,
           DiagnosticEngine& diags)
        : tokens_(tokens), pool_(pool), diags_(diags) {}

    std::vector<const SExpr*> read_all() {
        std::vector<const SExpr*> out;
        while (peek().kind != TokenKind::kEof) {
            const SExpr* e = read_one();
            if (e != nullptr) out.push_back(e);
        }
        return out;
    }

  private:
    const Token& peek() const { return tokens_[pos_]; }
    const Token& advance() { return tokens_[pos_++]; }

    const SExpr* read_one() {
        const Token& token = advance();
        switch (token.kind) {
          case TokenKind::kSymbol:
            return pool_.make_symbol(token.span, token.text);
          case TokenKind::kInt:
            return pool_.make_int(token.span, token.int_value);
          case TokenKind::kBool:
            return pool_.make_bool(token.span, token.int_value != 0);
          case TokenKind::kColon:
            // The parser treats ':' as an infix marker inside lists;
            // surface it as the symbol ":".
            return pool_.make_symbol(token.span, ":");
          case TokenKind::kLParen: {
            SExpr* list = pool_.make_list(token.span);
            while (true) {
                if (peek().kind == TokenKind::kEof) {
                    diags_.error(token.span, "unclosed '('");
                    break;
                }
                if (peek().kind == TokenKind::kRParen) {
                    const Token& close = advance();
                    list->span =
                        SourceSpan::join(token.span, close.span);
                    break;
                }
                const SExpr* item = read_one();
                if (item != nullptr) list->items.push_back(item);
            }
            return list;
          }
          case TokenKind::kRParen:
            diags_.error(token.span, "unmatched ')'");
            return nullptr;
          case TokenKind::kEof:
            return nullptr;
        }
        return nullptr;
    }

    const std::vector<Token>& tokens_;
    SExprPool& pool_;
    DiagnosticEngine& diags_;
    size_t pos_ = 0;
};

}  // namespace

std::vector<const SExpr*>
read_sexprs(const std::vector<Token>& tokens, SExprPool& pool,
            DiagnosticEngine& diags)
{
    return Reader(tokens, pool, diags).read_all();
}

}  // namespace bitc::lang
