#include "lang/parser.hpp"

#include <cctype>
#include <optional>
#include <unordered_map>

#include "lang/lexer.hpp"
#include "lang/sexpr.hpp"
#include "support/string_util.hpp"

namespace bitc::lang {

namespace {

const std::unordered_map<std::string_view, PrimOp>&
prim_table()
{
    static const auto* table =
        new std::unordered_map<std::string_view, PrimOp>{
            {"+", PrimOp::kAdd},     {"-", PrimOp::kSub},
            {"*", PrimOp::kMul},     {"/", PrimOp::kDiv},
            {"%", PrimOp::kRem},     {"<", PrimOp::kLt},
            {"<=", PrimOp::kLe},     {">", PrimOp::kGt},
            {">=", PrimOp::kGe},     {"==", PrimOp::kEq},
            {"!=", PrimOp::kNe},     {"and", PrimOp::kAnd},
            {"or", PrimOp::kOr},     {"not", PrimOp::kNot},
            {"bitand", PrimOp::kBitAnd}, {"bitor", PrimOp::kBitOr},
            {"bitxor", PrimOp::kBitXor}, {"<<", PrimOp::kShl},
            {">>", PrimOp::kShr},    {"neg", PrimOp::kNeg},
        };
    return *table;
}

/** Expected operand count per operator; 0 means "1 or 2" (minus). */
int
prim_arity(PrimOp op)
{
    switch (op) {
      case PrimOp::kNot:
      case PrimOp::kNeg:
        return 1;
      case PrimOp::kSub:
        return 0;  // unary negation or binary subtraction
      default:
        return 2;
    }
}

class Parser {
  public:
    Parser(AstArena& arena, DiagnosticEngine& diags)
        : arena_(arena), diags_(diags) {}

    void parse_top_level(const SExpr* form, Program& program) {
        if (form->head() != "define") {
            diags_.error(form->span,
                         "expected (define ...) at top level");
            return;
        }
        if (form->size() < 3 || !form->at(1)->is_list()) {
            diags_.error(form->span,
                         "define needs a (name params...) header and a "
                         "body");
            return;
        }
        FunctionDecl decl;
        decl.span = form->span;
        const SExpr* header = form->at(1);
        if (header->size() == 0 ||
            header->at(0)->kind != SExprKind::kSymbol) {
            diags_.error(header->span, "function name must be a symbol");
            return;
        }
        decl.name = header->at(0)->symbol;
        parse_params(header, decl);

        size_t pos = 2;
        // Optional ": type" return annotation.
        if (pos + 1 < form->size() && form->at(pos)->is_symbol(":")) {
            decl.declared_result = parse_type(form->at(pos + 1));
            pos += 2;
        }
        // Contract clauses, then body expressions.
        for (; pos < form->size(); ++pos) {
            const SExpr* item = form->at(pos);
            if (item->head() == "require") {
                if (item->size() != 2) {
                    diags_.error(item->span, "require takes one expression");
                    continue;
                }
                decl.requires_clauses.push_back(parse_expr(item->at(1)));
            } else if (item->head() == "ensure") {
                if (item->size() != 2) {
                    diags_.error(item->span, "ensure takes one expression");
                    continue;
                }
                decl.ensures_clauses.push_back(parse_expr(item->at(1)));
            } else {
                decl.body.push_back(parse_expr(item));
            }
        }
        if (decl.body.empty()) {
            diags_.error(form->span, str_format(
                "function '%s' has an empty body", decl.name.c_str()));
            return;
        }
        program.functions.push_back(std::move(decl));
    }

    Expr* parse_expr(const SExpr* form) {
        switch (form->kind) {
          case SExprKind::kInt: {
            Expr* e = arena_.make_expr(ExprKind::kIntLit, form->span);
            e->int_value = form->int_value;
            return e;
          }
          case SExprKind::kBool: {
            Expr* e = arena_.make_expr(ExprKind::kBoolLit, form->span);
            e->bool_value = form->int_value != 0;
            return e;
          }
          case SExprKind::kSymbol: {
            Expr* e = arena_.make_expr(ExprKind::kVar, form->span);
            e->name = form->symbol;
            return e;
          }
          case SExprKind::kList:
            return parse_list(form);
        }
        return error_expr(form->span, "unparseable expression");
    }

    const TypeExpr* parse_type(const SExpr* form) {
        if (form->kind == SExprKind::kSymbol) {
            std::string_view name = form->symbol;
            if (named_type_is_valid(name)) {
                TypeExpr* t =
                    arena_.make_type(TypeExpr::Kind::kNamed, form->span);
                t->name = name;
                return t;
            }
            diags_.error(form->span,
                         str_format("unknown type '%s'",
                                    std::string(name).c_str()));
            return fallback_type(form->span);
        }
        if (form->is_list() && form->head() == "array") {
            if (form->size() != 3 ||
                form->at(2)->kind != SExprKind::kInt) {
                diags_.error(form->span,
                             "array type is (array elem-type length)");
                return fallback_type(form->span);
            }
            TypeExpr* t =
                arena_.make_type(TypeExpr::Kind::kArray, form->span);
            t->elem = parse_type(form->at(1));
            t->array_size = form->at(2)->int_value;
            if (t->array_size < 0) {
                diags_.error(form->span, "array length must be >= 0");
            }
            return t;
        }
        diags_.error(form->span, "unparseable type");
        return fallback_type(form->span);
    }

  private:
    Expr* error_expr(SourceSpan span, std::string message) {
        diags_.error(span, std::move(message));
        return arena_.make_expr(ExprKind::kUnitLit, span);
    }

    TypeExpr* fallback_type(SourceSpan span) {
        TypeExpr* t = arena_.make_type(TypeExpr::Kind::kNamed, span);
        t->name = "int64";
        return t;
    }

    static bool named_type_is_valid(std::string_view name) {
        if (name == "bool" || name == "unit") return true;
        std::string_view digits;
        if (starts_with(name, "uint")) {
            digits = name.substr(4);
        } else if (starts_with(name, "int")) {
            digits = name.substr(3);
        } else {
            return false;
        }
        if (digits.empty() || digits.size() > 2) return false;
        int width = 0;
        for (char c : digits) {
            if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
                return false;
            }
            width = width * 10 + (c - '0');
        }
        return width >= 1 && width <= 64;
    }

    void parse_params(const SExpr* header, FunctionDecl& decl) {
        size_t i = 1;
        while (i < header->size()) {
            const SExpr* p = header->at(i);
            if (p->kind != SExprKind::kSymbol || p->symbol == ":") {
                diags_.error(p->span, "expected parameter name");
                ++i;
                continue;
            }
            Param param;
            param.name = p->symbol;
            param.span = p->span;
            if (i + 2 < header->size() + 1 && i + 1 < header->size() &&
                header->at(i + 1)->is_symbol(":")) {
                if (i + 2 >= header->size()) {
                    diags_.error(p->span, "missing type after ':'");
                    ++i;
                } else {
                    param.declared_type = parse_type(header->at(i + 2));
                    i += 3;
                }
            } else {
                ++i;
            }
            decl.params.push_back(std::move(param));
        }
    }

    Expr* parse_list(const SExpr* form) {
        if (form->size() == 0) {
            return error_expr(form->span, "empty application ()");
        }
        std::string_view head = form->head();

        if (head == "if") return parse_if(form);
        if (head == "let") return parse_let(form);
        if (head == "begin") return parse_begin(form);
        if (head == "while") return parse_while(form);
        if (head == "set!") return parse_set(form);
        if (head == "assert") return parse_simple(form, ExprKind::kAssert, 1);
        if (head == "unit") {
            if (form->size() != 1) {
                return error_expr(form->span, "(unit) takes no arguments");
            }
            return arena_.make_expr(ExprKind::kUnitLit, form->span);
        }
        if (head == "array-make") {
            return parse_simple(form, ExprKind::kArrayMake, 2);
        }
        if (head == "array-ref") {
            return parse_simple(form, ExprKind::kArrayRef, 2);
        }
        if (head == "array-set!") {
            return parse_simple(form, ExprKind::kArraySet, 3);
        }
        if (head == "array-len") {
            return parse_simple(form, ExprKind::kArrayLen, 1);
        }
        if (head == "native") {
            if (form->size() < 2 ||
                form->at(1)->kind != SExprKind::kSymbol) {
                return error_expr(form->span,
                                  "native is (native name arg...)");
            }
            Expr* e = arena_.make_expr(ExprKind::kNative, form->span);
            e->name = form->at(1)->symbol;
            for (size_t i = 2; i < form->size(); ++i) {
                e->args.push_back(parse_expr(form->at(i)));
            }
            return e;
        }

        auto prim = prim_table().find(head);
        if (prim != prim_table().end()) return parse_prim(form, prim->second);

        // Otherwise: a call. The callee must be a symbol.
        if (form->at(0)->kind != SExprKind::kSymbol) {
            return error_expr(form->span,
                              "callee must be a function name");
        }
        Expr* e = arena_.make_expr(ExprKind::kCall, form->span);
        e->name = form->at(0)->symbol;
        for (size_t i = 1; i < form->size(); ++i) {
            e->args.push_back(parse_expr(form->at(i)));
        }
        return e;
    }

    Expr* parse_prim(const SExpr* form, PrimOp op) {
        size_t argc = form->size() - 1;
        int arity = prim_arity(op);
        if (arity == 0) {  // minus: unary or binary
            if (argc != 1 && argc != 2) {
                return error_expr(form->span, "'-' takes 1 or 2 operands");
            }
            if (argc == 1) op = PrimOp::kNeg;
        } else if (argc != static_cast<size_t>(arity)) {
            return error_expr(
                form->span,
                str_format("'%s' takes %d operand(s), got %zu",
                           prim_op_name(op), arity, argc));
        }
        Expr* e = arena_.make_expr(ExprKind::kPrim, form->span);
        e->prim = op;
        for (size_t i = 1; i < form->size(); ++i) {
            e->args.push_back(parse_expr(form->at(i)));
        }
        return e;
    }

    Expr* parse_simple(const SExpr* form, ExprKind kind, size_t argc) {
        if (form->size() != argc + 1) {
            return error_expr(
                form->span,
                str_format("'%s' takes %zu argument(s)",
                           expr_kind_name(kind), argc));
        }
        Expr* e = arena_.make_expr(kind, form->span);
        for (size_t i = 1; i < form->size(); ++i) {
            e->args.push_back(parse_expr(form->at(i)));
        }
        return e;
    }

    Expr* parse_if(const SExpr* form) {
        if (form->size() != 3 && form->size() != 4) {
            return error_expr(form->span,
                              "if is (if cond then [else])");
        }
        Expr* e = arena_.make_expr(ExprKind::kIf, form->span);
        e->args.push_back(parse_expr(form->at(1)));
        e->args.push_back(parse_expr(form->at(2)));
        if (form->size() == 4) {
            e->args.push_back(parse_expr(form->at(3)));
        } else {
            e->args.push_back(
                arena_.make_expr(ExprKind::kUnitLit, form->span));
        }
        return e;
    }

    Expr* parse_let(const SExpr* form) {
        if (form->size() < 3 || !form->at(1)->is_list()) {
            return error_expr(form->span,
                              "let is (let ((name expr)...) body...)");
        }
        Expr* e = arena_.make_expr(ExprKind::kLet, form->span);
        for (const SExpr* binding : form->at(1)->items) {
            if (!binding->is_list() || binding->size() < 2 ||
                binding->at(0)->kind != SExprKind::kSymbol) {
                diags_.error(binding->span,
                             "binding is (name [: type] expr)");
                continue;
            }
            LetBinding b;
            b.name = binding->at(0)->symbol;
            if (binding->size() == 4 && binding->at(1)->is_symbol(":")) {
                b.declared_type = parse_type(binding->at(2));
                b.init = parse_expr(binding->at(3));
            } else if (binding->size() == 2) {
                b.init = parse_expr(binding->at(1));
            } else {
                diags_.error(binding->span,
                             "binding is (name [: type] expr)");
                continue;
            }
            e->bindings.push_back(std::move(b));
        }
        for (size_t i = 2; i < form->size(); ++i) {
            e->body.push_back(parse_expr(form->at(i)));
        }
        return e;
    }

    Expr* parse_begin(const SExpr* form) {
        if (form->size() < 2) {
            return error_expr(form->span, "begin needs a body");
        }
        Expr* e = arena_.make_expr(ExprKind::kBegin, form->span);
        for (size_t i = 1; i < form->size(); ++i) {
            e->args.push_back(parse_expr(form->at(i)));
        }
        return e;
    }

    Expr* parse_while(const SExpr* form) {
        if (form->size() < 2) {
            return error_expr(form->span,
                              "while is (while cond body...)");
        }
        Expr* e = arena_.make_expr(ExprKind::kWhile, form->span);
        e->args.push_back(parse_expr(form->at(1)));
        for (size_t i = 2; i < form->size(); ++i) {
            const SExpr* item = form->at(i);
            if (item->head() == "invariant") {
                if (item->size() != 2) {
                    diags_.error(item->span,
                                 "invariant takes one expression");
                    continue;
                }
                e->invariants.push_back(parse_expr(item->at(1)));
            } else {
                e->body.push_back(parse_expr(item));
            }
        }
        return e;
    }

    Expr* parse_set(const SExpr* form) {
        if (form->size() != 3 ||
            form->at(1)->kind != SExprKind::kSymbol) {
            return error_expr(form->span, "set! is (set! name expr)");
        }
        Expr* e = arena_.make_expr(ExprKind::kSet, form->span);
        e->name = form->at(1)->symbol;
        e->args.push_back(parse_expr(form->at(2)));
        return e;
    }

    AstArena& arena_;
    DiagnosticEngine& diags_;
};

}  // namespace

Result<Program>
parse_program(std::string_view source, DiagnosticEngine& diags)
{
    std::vector<Token> tokens = lex(source, diags);
    SExprPool pool;
    std::vector<const SExpr*> forms = read_sexprs(tokens, pool, diags);

    Program program;
    program.arena = std::make_shared<AstArena>();
    Parser parser(*program.arena, diags);
    for (const SExpr* form : forms) {
        parser.parse_top_level(form, program);
    }
    if (diags.has_errors()) {
        return parse_error(diags.first_error());
    }
    return program;
}

}  // namespace bitc::lang
