/**
 * @file
 * S-expression trees: the uniform concrete syntax layer between the
 * lexer and the parser, as in BitC's front end.
 */
#ifndef BITC_LANG_SEXPR_HPP
#define BITC_LANG_SEXPR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "lang/token.hpp"
#include "support/arena.hpp"
#include "support/diagnostics.hpp"

namespace bitc::lang {

/** Kinds of S-expression node. */
enum class SExprKind : uint8_t {
    kSymbol,
    kInt,
    kBool,
    kList,
};

/**
 * One node of the S-expression tree.  Arena-allocated; string payloads
 * are owned by the SExprPool's side storage.
 */
struct SExpr {
    SExprKind kind = SExprKind::kList;
    SourceSpan span;
    std::string_view symbol;       ///< kSymbol spelling.
    int64_t int_value = 0;         ///< kInt value, kBool 0/1.
    std::vector<const SExpr*> items;  ///< kList children.

    bool is_symbol(std::string_view text) const {
        return kind == SExprKind::kSymbol && symbol == text;
    }
    bool is_list() const { return kind == SExprKind::kList; }
    size_t size() const { return items.size(); }
    const SExpr* at(size_t i) const { return items[i]; }

    /** Head symbol of a list ("define" in (define ...)); "" otherwise. */
    std::string_view head() const {
        if (is_list() && !items.empty() &&
            items[0]->kind == SExprKind::kSymbol) {
            return items[0]->symbol;
        }
        return "";
    }

    /** Re-renders the S-expression (canonical spacing). */
    std::string to_string() const;
};

/** Owns the storage for a parsed S-expression forest. */
class SExprPool {
  public:
    SExpr* make_symbol(SourceSpan span, std::string_view text);
    SExpr* make_int(SourceSpan span, int64_t value);
    SExpr* make_bool(SourceSpan span, bool value);
    SExpr* make_list(SourceSpan span);

  private:
    std::vector<std::unique_ptr<SExpr>> nodes_;
    std::vector<std::unique_ptr<std::string>> strings_;
};

/**
 * Reads a whole token stream into a top-level list of S-expressions.
 * Errors (unbalanced parens, stray tokens) go to @p diags.
 */
std::vector<const SExpr*> read_sexprs(const std::vector<Token>& tokens,
                                      SExprPool& pool,
                                      DiagnosticEngine& diags);

}  // namespace bitc::lang

#endif  // BITC_LANG_SEXPR_HPP
