#include "lang/lexer.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "support/string_util.hpp"

namespace bitc::lang {

const char*
token_kind_name(TokenKind kind)
{
    switch (kind) {
      case TokenKind::kLParen: return "(";
      case TokenKind::kRParen: return ")";
      case TokenKind::kSymbol: return "symbol";
      case TokenKind::kInt: return "int";
      case TokenKind::kBool: return "bool";
      case TokenKind::kColon: return ":";
      case TokenKind::kEof: return "eof";
    }
    return "?";
}

std::string
Token::to_string() const
{
    switch (kind) {
      case TokenKind::kSymbol: return text;
      case TokenKind::kInt: return std::to_string(int_value);
      case TokenKind::kBool: return int_value != 0 ? "#t" : "#f";
      default: return token_kind_name(kind);
    }
}

namespace {

/** Cursor over the source with line/column tracking. */
class Cursor {
  public:
    explicit Cursor(std::string_view source) : source_(source) {}

    bool at_end() const { return pos_ >= source_.size(); }
    char peek() const { return at_end() ? '\0' : source_[pos_]; }

    char advance() {
        char c = source_[pos_++];
        if (c == '\n') {
            ++line_;
            column_ = 1;
        } else {
            ++column_;
        }
        return c;
    }

    SourceLoc loc() const { return {line_, column_}; }

  private:
    std::string_view source_;
    size_t pos_ = 0;
    uint32_t line_ = 1;
    uint32_t column_ = 1;
};

bool
is_symbol_char(char c)
{
    // Scheme-ish: anything printable that is not structural.
    return std::isalnum(static_cast<unsigned char>(c)) != 0 ||
           std::strchr("+-*/%<>=!?_&|^~.@'", c) != nullptr;
}

}  // namespace

std::vector<Token>
lex(std::string_view source, DiagnosticEngine& diags)
{
    std::vector<Token> tokens;
    Cursor cursor(source);

    while (!cursor.at_end()) {
        SourceLoc begin = cursor.loc();
        char c = cursor.peek();

        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            cursor.advance();
            continue;
        }
        if (c == ';') {  // comment to end of line
            while (!cursor.at_end() && cursor.peek() != '\n') {
                cursor.advance();
            }
            continue;
        }
        if (c == '(') {
            cursor.advance();
            tokens.push_back(
                {TokenKind::kLParen, {begin, cursor.loc()}, "", 0});
            continue;
        }
        if (c == ')') {
            cursor.advance();
            tokens.push_back(
                {TokenKind::kRParen, {begin, cursor.loc()}, "", 0});
            continue;
        }
        if (c == ':') {
            cursor.advance();
            tokens.push_back(
                {TokenKind::kColon, {begin, cursor.loc()}, "", 0});
            continue;
        }
        if (c == '#') {
            cursor.advance();
            char tag = cursor.peek();
            if (tag == 't' || tag == 'f') {
                cursor.advance();
                tokens.push_back({TokenKind::kBool,
                                  {begin, cursor.loc()},
                                  "",
                                  tag == 't' ? 1 : 0});
            } else {
                diags.error({begin, cursor.loc()},
                            "expected #t or #f after '#'");
            }
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
            std::string digits;
            bool hex = false;
            digits += cursor.advance();
            if (digits == "0" && (cursor.peek() == 'x')) {
                hex = true;
                cursor.advance();
                digits.clear();
            }
            while (!cursor.at_end() &&
                   (std::isalnum(static_cast<unsigned char>(
                        cursor.peek())) != 0)) {
                digits += cursor.advance();
            }
            errno = 0;
            char* end = nullptr;
            unsigned long long value =
                std::strtoull(digits.c_str(), &end, hex ? 16 : 10);
            if (end == nullptr || *end != '\0') {
                diags.error({begin, cursor.loc()},
                            str_format("bad integer literal '%s'",
                                       digits.c_str()));
                continue;
            }
            tokens.push_back({TokenKind::kInt,
                              {begin, cursor.loc()},
                              "",
                              static_cast<int64_t>(value)});
            continue;
        }

        if (is_symbol_char(c)) {
            std::string text;
            text += cursor.advance();
            while (!cursor.at_end() && is_symbol_char(cursor.peek())) {
                text += cursor.advance();
            }
            // "-123" lexes as a symbol start; reinterpret as a literal.
            if (text.size() > 1 && text[0] == '-' &&
                std::isdigit(static_cast<unsigned char>(text[1])) != 0) {
                errno = 0;
                char* end = nullptr;
                long long value = std::strtoll(text.c_str(), &end, 10);
                if (end != nullptr && *end == '\0') {
                    tokens.push_back({TokenKind::kInt,
                                      {begin, cursor.loc()},
                                      "",
                                      value});
                    continue;
                }
            }
            tokens.push_back(
                {TokenKind::kSymbol, {begin, cursor.loc()}, text, 0});
            continue;
        }

        diags.error({begin, cursor.loc()},
                    str_format("unexpected character '%c'", c));
        cursor.advance();
    }

    tokens.push_back({TokenKind::kEof, {cursor.loc(), cursor.loc()}, "", 0});
    return tokens;
}

}  // namespace bitc::lang
