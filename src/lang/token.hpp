/**
 * @file
 * Tokens of the BitC-like surface syntax.
 *
 * The concrete syntax is S-expression based, as BitC's was: atoms,
 * parentheses, integer/boolean literals, and `:` type-annotation
 * punctuation.  Comments run from ';' to end of line.
 */
#ifndef BITC_LANG_TOKEN_HPP
#define BITC_LANG_TOKEN_HPP

#include <cstdint>
#include <string>

#include "support/source_location.hpp"

namespace bitc::lang {

enum class TokenKind : uint8_t {
    kLParen,
    kRParen,
    kSymbol,   ///< identifiers, keywords and operators alike
    kInt,      ///< decimal or 0x hex integer literal
    kBool,     ///< #t / #f
    kColon,    ///< type annotation separator
    kEof,
};

const char* token_kind_name(TokenKind kind);

/** One lexed token. */
struct Token {
    TokenKind kind = TokenKind::kEof;
    SourceSpan span;
    std::string text;       ///< Symbol spelling (kSymbol).
    int64_t int_value = 0;  ///< Value (kInt) or 0/1 (kBool).

    std::string to_string() const;
};

}  // namespace bitc::lang

#endif  // BITC_LANG_TOKEN_HPP
