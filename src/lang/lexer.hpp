/**
 * @file
 * Lexer for the BitC-like surface syntax.
 */
#ifndef BITC_LANG_LEXER_HPP
#define BITC_LANG_LEXER_HPP

#include <string_view>
#include <vector>

#include "lang/token.hpp"
#include "support/diagnostics.hpp"

namespace bitc::lang {

/**
 * Tokenises @p source.  Lexical errors are reported to @p diags; the
 * returned stream always ends with a kEof token and is usable (error
 * characters are skipped) even when errors occurred.
 */
std::vector<Token> lex(std::string_view source, DiagnosticEngine& diags);

}  // namespace bitc::lang

#endif  // BITC_LANG_LEXER_HPP
