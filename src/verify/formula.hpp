/**
 * @file
 * Quantifier-free formulas over linear integer atoms.
 *
 * Canonical atoms are (term <= 0) and (term == 0); every comparison the
 * source language can write lowers onto these using integer tightening
 * (a < b  ==>  a - b + 1 <= 0).
 */
#ifndef BITC_VERIFY_FORMULA_HPP
#define BITC_VERIFY_FORMULA_HPP

#include <memory>
#include <string>
#include <vector>

#include "verify/term.hpp"

namespace bitc::verify {

enum class FormulaKind : uint8_t {
    kTrue,
    kFalse,
    kAtomLe,  ///< term <= 0
    kAtomEq,  ///< term == 0
    kAnd,
    kOr,
    kNot,
};

/**
 * Immutable formula node.  Shared_ptr-based DAG so sub-formulas can be
 * reused freely during VC generation.
 */
class Formula {
  public:
    using Ref = std::shared_ptr<const Formula>;

    static Ref truth();
    static Ref falsity();
    /** term <= 0 */
    static Ref le_zero(LinTerm term);
    /** term == 0 */
    static Ref eq_zero(LinTerm term);
    /** a <= b */
    static Ref le(const LinTerm& a, const LinTerm& b) {
        return le_zero(a.sub(b));
    }
    /** a < b (integer tightening) */
    static Ref lt(const LinTerm& a, const LinTerm& b) {
        return le_zero(a.sub(b).add(LinTerm(1)));
    }
    /** a == b */
    static Ref eq(const LinTerm& a, const LinTerm& b) {
        return eq_zero(a.sub(b));
    }
    static Ref conj(std::vector<Ref> parts);
    static Ref disj(std::vector<Ref> parts);
    static Ref negate(Ref f);
    static Ref implies(Ref antecedent, Ref consequent) {
        return disj({negate(std::move(antecedent)),
                     std::move(consequent)});
    }

    FormulaKind kind() const { return kind_; }
    const LinTerm& term() const { return term_; }
    const std::vector<Ref>& children() const { return children_; }

    std::string to_string() const;

  private:
    explicit Formula(FormulaKind kind) : kind_(kind) {}

    FormulaKind kind_;
    LinTerm term_;          ///< kAtomLe / kAtomEq
    std::vector<Ref> children_;  ///< kAnd / kOr / kNot
};

}  // namespace bitc::verify

#endif  // BITC_VERIFY_FORMULA_HPP
