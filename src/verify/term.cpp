#include "verify/term.hpp"

#include "support/string_util.hpp"

namespace bitc::verify {

void
LinTerm::normalize()
{
    for (auto it = coeffs_.begin(); it != coeffs_.end();) {
        if (it->second == 0) {
            it = coeffs_.erase(it);
        } else {
            ++it;
        }
    }
}

LinTerm
LinTerm::add(const LinTerm& other) const
{
    LinTerm out = *this;
    out.constant_ += other.constant_;
    for (const auto& [var, coeff] : other.coeffs_) {
        out.coeffs_[var] += coeff;
    }
    out.normalize();
    return out;
}

LinTerm
LinTerm::sub(const LinTerm& other) const
{
    return add(other.negate());
}

LinTerm
LinTerm::scale(int64_t factor) const
{
    LinTerm out;
    out.constant_ = constant_ * factor;
    if (factor != 0) {
        for (const auto& [var, coeff] : coeffs_) {
            out.coeffs_[var] = coeff * factor;
        }
    }
    return out;
}

std::string
LinTerm::to_string() const
{
    std::string out;
    for (const auto& [var, coeff] : coeffs_) {
        if (!out.empty()) out += " + ";
        out += str_format("%lld*v%u", static_cast<long long>(coeff), var);
    }
    if (out.empty() || constant_ != 0) {
        if (!out.empty()) out += " + ";
        out += str_format("%lld", static_cast<long long>(constant_));
    }
    return out;
}

}  // namespace bitc::verify
