/**
 * @file
 * Decision procedure for the verifier: validity of quantifier-free
 * linear integer formulas by DNF expansion plus Fourier–Motzkin
 * elimination (rational relaxation with integer tightening).
 *
 * Sound and incomplete, by design: kProved is trustworthy; kUnknown
 * means "insert the runtime check" — exactly the varying-measure
 * automated reasoning posture the paper sets for BitC.
 */
#ifndef BITC_VERIFY_SOLVER_HPP
#define BITC_VERIFY_SOLVER_HPP

#include <cstdint>
#include <vector>

#include "verify/formula.hpp"

namespace bitc::verify {

/** Result of a proof attempt. */
enum class Outcome : uint8_t {
    kProved,   ///< The formula is valid (holds for all integer inputs).
    kUnknown,  ///< Not proved: falsifiable, non-linear, or too big.
};

/** Tuning and blowup guards. */
struct SolverConfig {
    size_t max_disjuncts = 512;    ///< DNF expansion cap.
    size_t max_constraints = 4096; ///< FM working-set cap.
};

/** Cumulative counters for the C1 experiment. */
struct SolverStats {
    uint64_t queries = 0;
    uint64_t proved = 0;
    uint64_t unknown = 0;
    uint64_t fm_eliminations = 0;  ///< Variables eliminated in total.
};

/** Stateless (except statistics) solver instance. */
class Solver {
  public:
    explicit Solver(SolverConfig config = {}) : config_(config) {}

    /** Is @p formula true under every integer assignment? */
    Outcome prove_valid(const Formula::Ref& formula);

    /** Do @p premises entail @p goal? */
    Outcome prove_entails(const std::vector<Formula::Ref>& premises,
                          const Formula::Ref& goal);

    const SolverStats& stats() const { return stats_; }

  private:
    /** One <=-0 constraint in a conjunct. */
    using Constraint = LinTerm;
    using Conjunct = std::vector<Constraint>;

    /** Expands !formula (or formula) into DNF; false on cap blowout. */
    bool to_dnf(const Formula::Ref& formula, bool negated,
                std::vector<Conjunct>& out) const;

    /** True when the conjunct has no rational (hence no int) solution. */
    bool conjunct_unsat(Conjunct constraints);

    SolverConfig config_;
    SolverStats stats_;
};

}  // namespace bitc::verify

#endif  // BITC_VERIFY_SOLVER_HPP
