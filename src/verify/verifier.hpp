/**
 * @file
 * The constraint checker (paper challenge C1): symbolically executes
 * each typed function, generating proof obligations for
 *
 *   - (assert e) and (require e)/(ensure e) contracts,
 *   - array bounds at every array-ref / array-set!,
 *   - allocation sizes at array-make,
 *   - division by zero at / and %,
 *   - loop invariant entry and preservation,
 *   - callee preconditions at call sites,
 *
 * and discharging them with the linear-arithmetic solver.  kProved
 * obligations let the compiler drop the corresponding runtime check
 * (bounds-check elimination); kUnknown ones keep it.  Bit-precise
 * parameter types contribute range assumptions (an int8 argument is
 * known to lie in [-128, 127]) — the C3-feeds-C1 synergy the paper's
 * design argues for.
 *
 * The verifier assumes ideal (non-wrapping) integer arithmetic, the
 * usual Hoare-logic idealisation; overflow obligations are future work.
 */
#ifndef BITC_VERIFY_VERIFIER_HPP
#define BITC_VERIFY_VERIFIER_HPP

#include <string>
#include <unordered_map>
#include <vector>

#include "types/checker.hpp"
#include "verify/solver.hpp"

namespace bitc::verify {

/** What a single obligation protects. */
enum class ObligationKind : uint8_t {
    kAssert,
    kBoundsLower,        ///< 0 <= index
    kBoundsUpper,        ///< index < length
    kAllocSize,          ///< array-make length >= 0
    kDivByZero,          ///< divisor != 0
    kEnsure,
    kRequireAtCall,      ///< callee precondition at a call site
    kInvariantEntry,
    kInvariantPreserved,
    kOverflow,           ///< ideal result fits the declared bit width
};

const char* obligation_kind_name(ObligationKind kind);

/** One generated-and-attempted proof obligation. */
struct Obligation {
    ObligationKind kind;
    SourceSpan span;
    const lang::Expr* site = nullptr;  ///< AST node being protected.
    std::string description;
    Outcome outcome = Outcome::kUnknown;
};

/** Per-function verification results. */
struct FunctionReport {
    std::string function;
    std::vector<Obligation> obligations;
};

/** Whole-program verification results. */
class VerifyReport {
  public:
    std::vector<FunctionReport> functions;
    SolverStats solver_stats;
    double elapsed_ms = 0;

    size_t total() const;
    size_t proved() const;
    size_t unknown() const { return total() - proved(); }

    /**
     * True when the obligation of @p kind anchored at @p site was
     * proved — the compiler's license to drop that runtime check.
     */
    bool is_proved(const lang::Expr* site, ObligationKind kind) const;

    /** Multi-line human-readable report. */
    std::string to_string() const;

    void index();  ///< (Re)builds the is_proved lookup table.

  private:
    std::unordered_map<const lang::Expr*, uint32_t> proved_mask_;
};

/** Verifier behaviour switches. */
struct VerifyOptions {
    SolverConfig solver;
    /**
     * Also emit kOverflow obligations: for every +, -, neg and
     * constant-scaled * whose static type is narrower than 64 bits,
     * prove the *ideal* result stays within the declared width (so
     * runtime wrapping never actually occurs).  Off by default: the
     * systems idioms that rely on wrapping (hashes, checksums,
     * masking) legitimately fail these obligations.
     */
    bool overflow_obligations = false;
};

/**
 * Verifies every function of @p program.  Never fails: unprovable
 * obligations are reported as kUnknown, not errors.
 */
VerifyReport verify_program(types::TypedProgram& program,
                            SolverConfig config = {});

/** As above, with full options. */
VerifyReport verify_program_with_options(types::TypedProgram& program,
                                         const VerifyOptions& options);

}  // namespace bitc::verify

#endif  // BITC_VERIFY_VERIFIER_HPP
