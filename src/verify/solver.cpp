#include "verify/solver.hpp"

#include <numeric>
#include <optional>

namespace bitc::verify {

namespace {

/** a*b with overflow detection. */
std::optional<int64_t>
checked_mul(int64_t a, int64_t b)
{
    int64_t out;
    if (__builtin_mul_overflow(a, b, &out)) return std::nullopt;
    return out;
}

std::optional<int64_t>
checked_add(int64_t a, int64_t b)
{
    int64_t out;
    if (__builtin_add_overflow(a, b, &out)) return std::nullopt;
    return out;
}

/** term1*s1 + term2*s2, or nullopt on overflow. */
std::optional<LinTerm>
checked_combine(const LinTerm& a, int64_t sa, const LinTerm& b, int64_t sb)
{
    auto k1 = checked_mul(a.constant(), sa);
    auto k2 = checked_mul(b.constant(), sb);
    if (!k1 || !k2) return std::nullopt;
    auto k = checked_add(*k1, *k2);
    if (!k) return std::nullopt;
    LinTerm result(*k);
    for (const auto& [var, coeff] : a.coefficients()) {
        auto c = checked_mul(coeff, sa);
        if (!c) return std::nullopt;
        result = result.add(LinTerm::variable(var).scale(*c));
    }
    for (const auto& [var, coeff] : b.coefficients()) {
        auto c = checked_mul(coeff, sb);
        if (!c) return std::nullopt;
        result = result.add(LinTerm::variable(var).scale(*c));
    }
    return result;
}

/**
 * Integer tightening: divides a (sum <= 0) constraint by the gcd of
 * its coefficients, rounding the constant toward the tighter bound.
 */
LinTerm
tighten(const LinTerm& term)
{
    if (term.coefficients().empty()) return term;
    int64_t g = 0;
    for (const auto& [var, coeff] : term.coefficients()) {
        g = std::gcd(g, coeff < 0 ? -coeff : coeff);
    }
    if (g <= 1) return term;
    // sum(c_i x_i) <= -k  ==>  sum(c_i/g x_i) <= floor(-k/g)
    int64_t k = term.constant();
    int64_t rhs = -k;
    int64_t floored =
        rhs >= 0 ? rhs / g : -((-rhs + g - 1) / g);
    LinTerm out(-floored);
    for (const auto& [var, coeff] : term.coefficients()) {
        out = out.add(LinTerm::variable(var).scale(coeff / g));
    }
    return out;
}

}  // namespace

bool
Solver::to_dnf(const Formula::Ref& formula, bool negated,
               std::vector<Conjunct>& out) const
{
    switch (formula->kind()) {
      case FormulaKind::kTrue:
        if (negated) {
            // false: contributes no disjunct
        } else {
            out.push_back({});
        }
        return true;
      case FormulaKind::kFalse:
        return to_dnf(Formula::truth(), !negated, out);
      case FormulaKind::kAtomLe: {
        if (!negated) {
            out.push_back({formula->term()});
        } else {
            // !(t <= 0)  ==>  t >= 1  ==>  -t + 1 <= 0
            out.push_back({formula->term().negate().add(LinTerm(1))});
        }
        return true;
      }
      case FormulaKind::kAtomEq: {
        if (!negated) {
            out.push_back(
                {formula->term(), formula->term().negate()});
        } else {
            // t != 0  ==>  t <= -1  or  -t <= -1
            out.push_back({formula->term().add(LinTerm(1))});
            out.push_back({formula->term().negate().add(LinTerm(1))});
        }
        return true;
      }
      case FormulaKind::kNot:
        return to_dnf(formula->children()[0], !negated, out);
      case FormulaKind::kAnd:
      case FormulaKind::kOr: {
        bool is_and =
            (formula->kind() == FormulaKind::kAnd) != negated;
        if (!is_and) {
            // Disjunction: concatenate children's disjuncts.
            for (const Formula::Ref& child : formula->children()) {
                if (!to_dnf(child, negated, out)) return false;
                if (out.size() > config_.max_disjuncts) return false;
            }
            return true;
        }
        // Conjunction: cross product of children's disjuncts.
        std::vector<Conjunct> acc = {{}};
        for (const Formula::Ref& child : formula->children()) {
            std::vector<Conjunct> child_dnf;
            if (!to_dnf(child, negated, child_dnf)) return false;
            std::vector<Conjunct> next;
            for (const Conjunct& a : acc) {
                for (const Conjunct& b : child_dnf) {
                    Conjunct merged = a;
                    merged.insert(merged.end(), b.begin(), b.end());
                    next.push_back(std::move(merged));
                    if (next.size() > config_.max_disjuncts) {
                        return false;
                    }
                }
            }
            acc = std::move(next);
        }
        out.insert(out.end(), acc.begin(), acc.end());
        return out.size() <= config_.max_disjuncts;
      }
    }
    return false;
}

bool
Solver::conjunct_unsat(Conjunct constraints)
{
    // Fourier–Motzkin: repeatedly eliminate a variable, looking for a
    // constant contradiction (k <= 0 with k > 0).
    while (true) {
        // Scan constants; drop trivially-true constraints.
        Conjunct active;
        for (LinTerm& c : constraints) {
            c = tighten(c);
            if (c.is_constant()) {
                if (c.constant() > 0) return true;  // contradiction
                continue;
            }
            active.push_back(std::move(c));
        }
        if (active.empty()) return false;  // satisfiable

        // Pick the variable with the fewest pair combinations.
        SymVar best_var = active[0].coefficients().begin()->first;
        size_t best_cost = SIZE_MAX;
        {
            std::map<SymVar, std::pair<size_t, size_t>> counts;
            for (const LinTerm& c : active) {
                for (const auto& [var, coeff] : c.coefficients()) {
                    if (coeff > 0) {
                        counts[var].first++;
                    } else {
                        counts[var].second++;
                    }
                }
            }
            for (const auto& [var, uppers_lowers] : counts) {
                size_t cost =
                    uppers_lowers.first * uppers_lowers.second;
                if (cost < best_cost) {
                    best_cost = cost;
                    best_var = var;
                }
            }
        }

        Conjunct next;
        std::vector<const LinTerm*> uppers;  // coeff > 0
        std::vector<const LinTerm*> lowers;  // coeff < 0
        for (const LinTerm& c : active) {
            int64_t coeff = c.coefficient(best_var);
            if (coeff > 0) {
                uppers.push_back(&c);
            } else if (coeff < 0) {
                lowers.push_back(&c);
            } else {
                next.push_back(c);
            }
        }
        for (const LinTerm* u : uppers) {
            for (const LinTerm* l : lowers) {
                int64_t cu = u->coefficient(best_var);
                int64_t cl = l->coefficient(best_var);  // negative
                auto combined = checked_combine(*u, -cl, *l, cu);
                if (!combined) return false;  // overflow: give up
                next.push_back(std::move(*combined));
                if (next.size() > config_.max_constraints) {
                    return false;  // blowup: give up (sound)
                }
            }
        }
        ++stats_.fm_eliminations;
        constraints = std::move(next);
        if (constraints.empty()) return false;
    }
}

Outcome
Solver::prove_valid(const Formula::Ref& formula)
{
    ++stats_.queries;
    // Valid iff the negation is unsatisfiable.
    std::vector<Conjunct> dnf;
    if (!to_dnf(formula, /*negated=*/true, dnf)) {
        ++stats_.unknown;
        return Outcome::kUnknown;
    }
    for (Conjunct& conj : dnf) {
        if (!conjunct_unsat(std::move(conj))) {
            ++stats_.unknown;
            return Outcome::kUnknown;
        }
    }
    ++stats_.proved;
    return Outcome::kProved;
}

Outcome
Solver::prove_entails(const std::vector<Formula::Ref>& premises,
                      const Formula::Ref& goal)
{
    std::vector<Formula::Ref> parts = premises;
    return prove_valid(
        Formula::implies(Formula::conj(std::move(parts)), goal));
}

}  // namespace bitc::verify
