#include "verify/formula.hpp"

namespace bitc::verify {

Formula::Ref
Formula::truth()
{
    static Ref instance = std::shared_ptr<Formula>(
        new Formula(FormulaKind::kTrue));
    return instance;
}

Formula::Ref
Formula::falsity()
{
    static Ref instance = std::shared_ptr<Formula>(
        new Formula(FormulaKind::kFalse));
    return instance;
}

Formula::Ref
Formula::le_zero(LinTerm term)
{
    if (term.is_constant()) {
        return term.constant() <= 0 ? truth() : falsity();
    }
    auto f = std::shared_ptr<Formula>(new Formula(FormulaKind::kAtomLe));
    f->term_ = std::move(term);
    return f;
}

Formula::Ref
Formula::eq_zero(LinTerm term)
{
    if (term.is_constant()) {
        return term.constant() == 0 ? truth() : falsity();
    }
    auto f = std::shared_ptr<Formula>(new Formula(FormulaKind::kAtomEq));
    f->term_ = std::move(term);
    return f;
}

Formula::Ref
Formula::conj(std::vector<Ref> parts)
{
    std::vector<Ref> kept;
    for (Ref& p : parts) {
        if (p->kind() == FormulaKind::kTrue) continue;
        if (p->kind() == FormulaKind::kFalse) return falsity();
        kept.push_back(std::move(p));
    }
    if (kept.empty()) return truth();
    if (kept.size() == 1) return kept[0];
    auto f = std::shared_ptr<Formula>(new Formula(FormulaKind::kAnd));
    f->children_ = std::move(kept);
    return f;
}

Formula::Ref
Formula::disj(std::vector<Ref> parts)
{
    std::vector<Ref> kept;
    for (Ref& p : parts) {
        if (p->kind() == FormulaKind::kFalse) continue;
        if (p->kind() == FormulaKind::kTrue) return truth();
        kept.push_back(std::move(p));
    }
    if (kept.empty()) return falsity();
    if (kept.size() == 1) return kept[0];
    auto f = std::shared_ptr<Formula>(new Formula(FormulaKind::kOr));
    f->children_ = std::move(kept);
    return f;
}

Formula::Ref
Formula::negate(Ref f)
{
    switch (f->kind()) {
      case FormulaKind::kTrue: return falsity();
      case FormulaKind::kFalse: return truth();
      case FormulaKind::kNot: return f->children()[0];
      default: {
        auto out = std::shared_ptr<Formula>(new Formula(FormulaKind::kNot));
        out->children_ = {std::move(f)};
        return out;
      }
    }
}

std::string
Formula::to_string() const
{
    switch (kind_) {
      case FormulaKind::kTrue: return "true";
      case FormulaKind::kFalse: return "false";
      case FormulaKind::kAtomLe: return "(" + term_.to_string() + " <= 0)";
      case FormulaKind::kAtomEq: return "(" + term_.to_string() + " == 0)";
      case FormulaKind::kNot: return "(not " + children_[0]->to_string() + ")";
      case FormulaKind::kAnd:
      case FormulaKind::kOr: {
        std::string out = kind_ == FormulaKind::kAnd ? "(and" : "(or";
        for (const Ref& c : children_) {
            out += ' ';
            out += c->to_string();
        }
        out += ')';
        return out;
      }
    }
    return "?";
}

}  // namespace bitc::verify
