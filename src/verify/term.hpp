/**
 * @file
 * Linear integer terms: the arithmetic fragment the constraint checker
 * reasons about exactly.  A term is sum(coeff_i * var_i) + constant
 * over symbolic variables; anything non-linear becomes a fresh opaque
 * variable (sound abstraction, loses precision).
 */
#ifndef BITC_VERIFY_TERM_HPP
#define BITC_VERIFY_TERM_HPP

#include <cstdint>
#include <map>
#include <string>

namespace bitc::verify {

/** Identifier of a symbolic integer variable. */
using SymVar = uint32_t;

/** A linear combination of symbolic variables plus a constant. */
class LinTerm {
  public:
    LinTerm() = default;
    /** The constant term @p value. */
    explicit LinTerm(int64_t value) : constant_(value) {}

    /** The term 1 * var. */
    static LinTerm variable(SymVar var) {
        LinTerm t;
        t.coeffs_[var] = 1;
        return t;
    }

    int64_t constant() const { return constant_; }
    const std::map<SymVar, int64_t>& coefficients() const {
        return coeffs_;
    }

    bool is_constant() const { return coeffs_.empty(); }

    /** Coefficient of @p var (0 when absent). */
    int64_t coefficient(SymVar var) const {
        auto it = coeffs_.find(var);
        return it == coeffs_.end() ? 0 : it->second;
    }

    LinTerm add(const LinTerm& other) const;
    LinTerm sub(const LinTerm& other) const;
    LinTerm scale(int64_t factor) const;
    LinTerm negate() const { return scale(-1); }

    bool operator==(const LinTerm&) const = default;

    /** "2*v3 + -1*v7 + 4" rendering. */
    std::string to_string() const;

  private:
    void normalize();

    std::map<SymVar, int64_t> coeffs_;
    int64_t constant_ = 0;
};

}  // namespace bitc::verify

#endif  // BITC_VERIFY_TERM_HPP
