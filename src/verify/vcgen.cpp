/**
 * @file
 * Symbolic execution engine behind verify_program (see verifier.hpp).
 */
#include <optional>
#include <set>

#include "support/stats.hpp"
#include "support/string_util.hpp"
#include "verify/verifier.hpp"

#include "lang/resolver.hpp"

namespace bitc::verify {

using lang::Expr;
using lang::ExprKind;
using lang::FunctionDecl;
using lang::PrimOp;
using types::Type;
using types::TypeKind;
using types::TypedProgram;

const char*
obligation_kind_name(ObligationKind kind)
{
    switch (kind) {
      case ObligationKind::kAssert: return "assert";
      case ObligationKind::kBoundsLower: return "bounds-lower";
      case ObligationKind::kBoundsUpper: return "bounds-upper";
      case ObligationKind::kAllocSize: return "alloc-size";
      case ObligationKind::kDivByZero: return "div-by-zero";
      case ObligationKind::kEnsure: return "ensure";
      case ObligationKind::kRequireAtCall: return "require-at-call";
      case ObligationKind::kInvariantEntry: return "invariant-entry";
      case ObligationKind::kInvariantPreserved:
        return "invariant-preserved";
      case ObligationKind::kOverflow: return "overflow";
    }
    return "?";
}

size_t
VerifyReport::total() const
{
    size_t n = 0;
    for (const FunctionReport& f : functions) n += f.obligations.size();
    return n;
}

size_t
VerifyReport::proved() const
{
    size_t n = 0;
    for (const FunctionReport& f : functions) {
        for (const Obligation& o : f.obligations) {
            if (o.outcome == Outcome::kProved) ++n;
        }
    }
    return n;
}

void
VerifyReport::index()
{
    proved_mask_.clear();
    for (const FunctionReport& f : functions) {
        for (const Obligation& o : f.obligations) {
            if (o.outcome == Outcome::kProved && o.site != nullptr) {
                proved_mask_[o.site] |=
                    1u << static_cast<uint32_t>(o.kind);
            }
        }
    }
}

bool
VerifyReport::is_proved(const lang::Expr* site,
                        ObligationKind kind) const
{
    auto it = proved_mask_.find(site);
    if (it == proved_mask_.end()) return false;
    return (it->second & (1u << static_cast<uint32_t>(kind))) != 0;
}

std::string
VerifyReport::to_string() const
{
    std::string out = str_format(
        "verification: %zu/%zu obligations proved (%.1f ms)\n", proved(),
        total(), elapsed_ms);
    for (const FunctionReport& f : functions) {
        out += "  " + f.function + ":\n";
        for (const Obligation& o : f.obligations) {
            out += str_format(
                "    [%s] %-19s %s : %s\n",
                o.outcome == Outcome::kProved ? "proved " : "runtime",
                obligation_kind_name(o.kind), o.span.to_string().c_str(),
                o.description.c_str());
        }
    }
    return out;
}

namespace {

/** Symbolic value: which field is meaningful depends on static type. */
struct SymVal {
    LinTerm term;                       ///< integer value
    Formula::Ref truth = Formula::truth();  ///< boolean value
    std::optional<LinTerm> array_len;   ///< array length, if tracked
};

/** Collects the local slots assigned anywhere within @p e. */
void
collect_assigned(const Expr* e, std::set<int>& out)
{
    if (e->kind == ExprKind::kSet && e->local_slot >= 0) {
        out.insert(e->local_slot);
    }
    for (const Expr* a : e->args) collect_assigned(a, out);
    for (const Expr* b : e->body) collect_assigned(b, out);
    for (const lang::LetBinding& b : e->bindings) {
        collect_assigned(b.init, out);
    }
}

class FunctionVerifier {
  public:
    FunctionVerifier(TypedProgram& program, Solver& solver,
                     FunctionReport& report, bool overflow_obligations)
        : program_(program),
          solver_(solver),
          report_(report),
          overflow_obligations_(overflow_obligations) {}

    void run(size_t function_index) {
        const FunctionDecl& f =
            program_.program().functions[function_index];
        state_.assign(static_cast<size_t>(f.num_locals), SymVal{});

        // Parameters: fresh symbols, constrained by their bit-precise
        // types (the C3 synergy) and by the require clauses.
        const types::FunctionType& ft =
            program_.function_type(function_index);
        for (size_t i = 0; i < f.params.size(); ++i) {
            state_[static_cast<size_t>(f.params[i].slot)] =
                fresh_of_type(program_.store().prune(ft.params[i]));
        }
        for (const Expr* r : f.requires_clauses) {
            assume(eval(const_cast<Expr*>(r)).truth);
        }

        SymVal result;
        for (Expr* e : f.body) result = eval(e);

        // Postconditions.
        result_ = result;
        in_ensures_ = true;
        for (Expr* e : f.ensures_clauses) {
            SymVal v = eval(e);
            obligation(ObligationKind::kEnsure, e->span, e,
                       "ensure " + e->to_string(), v.truth);
        }
        in_ensures_ = false;
    }

  private:
    // --- Symbol management ---------------------------------------------

    LinTerm fresh() { return LinTerm::variable(next_var_++); }

    /** Fresh symbol constrained to its type's representable range. */
    SymVal fresh_of_type(Type* type) {
        SymVal v;
        switch (type->kind) {
          case TypeKind::kInt: {
            v.term = fresh();
            if (type->bits < 63) {
                if (type->is_signed) {
                    int64_t lo = -(int64_t{1} << (type->bits - 1));
                    int64_t hi = (int64_t{1} << (type->bits - 1)) - 1;
                    assume(Formula::le(LinTerm(lo), v.term));
                    assume(Formula::le(v.term, LinTerm(hi)));
                } else {
                    int64_t hi = (int64_t{1} << type->bits) - 1;
                    assume(Formula::le(LinTerm(0), v.term));
                    assume(Formula::le(v.term, LinTerm(hi)));
                }
            } else if (!type->is_signed) {
                assume(Formula::le(LinTerm(0), v.term));
            }
            return v;
          }
          case TypeKind::kBool: {
            v.term = fresh();
            assume(Formula::le(LinTerm(0), v.term));
            assume(Formula::le(v.term, LinTerm(1)));
            v.truth = Formula::eq(v.term, LinTerm(1));
            return v;
          }
          case TypeKind::kArray: {
            if (type->size != types::kUnknownSize) {
                v.array_len = LinTerm(type->size);
            } else {
                LinTerm len = fresh();
                assume(Formula::le(LinTerm(0), len));
                v.array_len = len;
            }
            return v;
          }
          default:
            v.term = fresh();
            return v;
        }
    }

    void assume(Formula::Ref f) { assumptions_.push_back(std::move(f)); }

    void obligation(ObligationKind kind, SourceSpan span,
                    const Expr* site, std::string description,
                    Formula::Ref goal) {
        Obligation o;
        o.kind = kind;
        o.span = span;
        o.site = site;
        o.description = std::move(description);
        o.outcome = solver_.prove_entails(assumptions_, goal);
        report_.obligations.push_back(std::move(o));
    }

    void havoc_slots(const std::set<int>& slots) {
        for (int slot : slots) {
            // Reconstruct range facts from the (unchanging) static type
            // is not directly available per slot here; a plain fresh
            // symbol is sound.
            SymVal v;
            v.term = fresh();
            v.truth = opaque_bool();
            v.array_len = state_[static_cast<size_t>(slot)].array_len;
            state_[static_cast<size_t>(slot)] = v;
        }
    }

    Formula::Ref opaque_bool() {
        LinTerm b = fresh();
        assume(Formula::le(LinTerm(0), b));
        assume(Formula::le(b, LinTerm(1)));
        return Formula::eq(b, LinTerm(1));
    }

    // --- Evaluation ------------------------------------------------------

    SymVal eval(Expr* e) {
        switch (e->kind) {
          case ExprKind::kIntLit: {
            SymVal v;
            v.term = LinTerm(e->int_value);
            return v;
          }
          case ExprKind::kBoolLit: {
            SymVal v;
            v.truth = e->bool_value ? Formula::truth()
                                    : Formula::falsity();
            v.term = LinTerm(e->bool_value ? 1 : 0);
            return v;
          }
          case ExprKind::kUnitLit:
            return SymVal{};
          case ExprKind::kVar: {
            if (e->local_slot == lang::kResultSlot) return result_;
            if (e->local_slot < 0) return SymVal{};
            return state_[static_cast<size_t>(e->local_slot)];
          }
          case ExprKind::kPrim:
            return eval_prim(e);
          case ExprKind::kCall:
            return eval_call(e);
          case ExprKind::kIf:
            return eval_if(e);
          case ExprKind::kLet: {
            for (lang::LetBinding& b : e->bindings) {
                state_[static_cast<size_t>(b.slot)] = eval(b.init);
            }
            SymVal last;
            for (Expr* item : e->body) last = eval(item);
            return last;
          }
          case ExprKind::kBegin: {
            SymVal last;
            for (Expr* item : e->args) last = eval(item);
            return last;
          }
          case ExprKind::kWhile:
            return eval_while(e);
          case ExprKind::kSet: {
            SymVal v = eval(e->args[0]);
            if (e->local_slot >= 0) {
                state_[static_cast<size_t>(e->local_slot)] = v;
            }
            return SymVal{};
          }
          case ExprKind::kAssert: {
            SymVal v = eval(e->args[0]);
            obligation(ObligationKind::kAssert, e->span, e,
                       "assert " + e->args[0]->to_string(), v.truth);
            // Downstream code may rely on the asserted fact (checked
            // statically or dynamically, it holds past this point).
            assume(v.truth);
            return SymVal{};
          }
          case ExprKind::kArrayMake: {
            SymVal len = eval(e->args[0]);
            eval(e->args[1]);
            obligation(ObligationKind::kAllocSize, e->span, e,
                       "array-make length >= 0",
                       Formula::le(LinTerm(0), len.term));
            SymVal v;
            v.array_len = len.term;
            return v;
          }
          case ExprKind::kArrayRef: {
            SymVal arr = eval(e->args[0]);
            SymVal idx = eval(e->args[1]);
            bounds_obligations(e, arr, idx);
            Type* t = program_.type_of(e);
            return fresh_of_type(t);
          }
          case ExprKind::kArraySet: {
            SymVal arr = eval(e->args[0]);
            SymVal idx = eval(e->args[1]);
            eval(e->args[2]);
            bounds_obligations(e, arr, idx);
            return SymVal{};
          }
          case ExprKind::kArrayLen: {
            SymVal arr = eval(e->args[0]);
            SymVal v;
            if (arr.array_len) {
                v.term = *arr.array_len;
            } else {
                v.term = fresh();
                assume(Formula::le(LinTerm(0), v.term));
            }
            return v;
          }
          case ExprKind::kNative: {
            // Foreign code: arguments evaluated, result fully opaque.
            for (Expr* a : e->args) eval(a);
            SymVal v;
            v.term = fresh();
            return v;
          }
        }
        return SymVal{};
    }

    void bounds_obligations(const Expr* e, const SymVal& arr,
                            const SymVal& idx) {
        obligation(ObligationKind::kBoundsLower, e->span, e,
                   "0 <= index", Formula::le(LinTerm(0), idx.term));
        if (arr.array_len) {
            obligation(ObligationKind::kBoundsUpper, e->span, e,
                       "index < length",
                       Formula::lt(idx.term, *arr.array_len));
        } else {
            Obligation o;
            o.kind = ObligationKind::kBoundsUpper;
            o.span = e->span;
            o.site = e;
            o.description = "index < length (length unknown)";
            o.outcome = Outcome::kUnknown;
            report_.obligations.push_back(std::move(o));
        }
        // Past this point the access succeeded (either statically
        // proved or dynamically checked), so the facts hold.
        assume(Formula::le(LinTerm(0), idx.term));
        if (arr.array_len) {
            assume(Formula::lt(idx.term, *arr.array_len));
        }
    }

    SymVal eval_prim(Expr* e) {
        switch (e->prim) {
          case PrimOp::kAdd: case PrimOp::kSub: {
            SymVal a = eval(e->args[0]);
            SymVal b = eval(e->args[1]);
            SymVal v;
            v.term = e->prim == PrimOp::kAdd ? a.term.add(b.term)
                                             : a.term.sub(b.term);
            overflow_obligation(e, v.term);
            return v;
          }
          case PrimOp::kMul: {
            SymVal a = eval(e->args[0]);
            SymVal b = eval(e->args[1]);
            SymVal v;
            if (a.term.is_constant()) {
                v.term = b.term.scale(a.term.constant());
                overflow_obligation(e, v.term);
            } else if (b.term.is_constant()) {
                v.term = a.term.scale(b.term.constant());
                overflow_obligation(e, v.term);
            } else {
                v.term = fresh();  // non-linear: opaque
                overflow_obligation(e, v.term);
            }
            return v;
          }
          case PrimOp::kDiv: case PrimOp::kRem: {
            SymVal a = eval(e->args[0]);
            SymVal b = eval(e->args[1]);
            obligation(ObligationKind::kDivByZero, e->span, e,
                       "divisor != 0",
                       Formula::negate(
                           Formula::eq(b.term, LinTerm(0))));
            SymVal v;
            v.term = fresh();
            if (e->prim == PrimOp::kRem && b.term.is_constant() &&
                b.term.constant() > 0) {
                // 0 <= a % k < k for a >= 0; we only assume the
                // unconditionally-true integer fact |a%k| < k.
                assume(Formula::lt(v.term, b.term));
                assume(Formula::lt(b.term.negate(), v.term));
            }
            (void)a;
            return v;
          }
          case PrimOp::kNeg: {
            SymVal a = eval(e->args[0]);
            SymVal v;
            v.term = a.term.negate();
            overflow_obligation(e, v.term);
            return v;
          }
          case PrimOp::kBitAnd: {
            SymVal a = eval(e->args[0]);
            SymVal b = eval(e->args[1]);
            SymVal v;
            v.term = fresh();
            // The ring-buffer idiom: masking with a non-negative
            // constant bounds the result, 0 <= x & m <= m. This is
            // what makes (array-ref buf (bitand i 15)) check-free.
            int64_t mask = 0;
            bool has_mask = false;
            if (a.term.is_constant() && a.term.constant() >= 0) {
                mask = a.term.constant();
                has_mask = true;
            } else if (b.term.is_constant() && b.term.constant() >= 0) {
                mask = b.term.constant();
                has_mask = true;
            }
            if (has_mask) {
                assume(Formula::le(LinTerm(0), v.term));
                assume(Formula::le(v.term, LinTerm(mask)));
            }
            return v;
          }
          case PrimOp::kBitOr:
          case PrimOp::kBitXor: case PrimOp::kShl: case PrimOp::kShr: {
            eval(e->args[0]);
            eval(e->args[1]);
            SymVal v;
            v.term = fresh();  // bit-level ops are opaque to the prover
            return v;
          }
          case PrimOp::kLt: case PrimOp::kLe:
          case PrimOp::kGt: case PrimOp::kGe: {
            SymVal a = eval(e->args[0]);
            SymVal b = eval(e->args[1]);
            SymVal v;
            switch (e->prim) {
              case PrimOp::kLt: v.truth = Formula::lt(a.term, b.term); break;
              case PrimOp::kLe: v.truth = Formula::le(a.term, b.term); break;
              case PrimOp::kGt: v.truth = Formula::lt(b.term, a.term); break;
              default: v.truth = Formula::le(b.term, a.term); break;
            }
            return v;
          }
          case PrimOp::kEq: case PrimOp::kNe: {
            SymVal a = eval(e->args[0]);
            SymVal b = eval(e->args[1]);
            SymVal v;
            v.truth = Formula::eq(a.term, b.term);
            if (e->prim == PrimOp::kNe) {
                v.truth = Formula::negate(v.truth);
            }
            return v;
          }
          case PrimOp::kAnd: case PrimOp::kOr: {
            SymVal a = eval(e->args[0]);
            SymVal b = eval(e->args[1]);
            SymVal v;
            v.truth = e->prim == PrimOp::kAnd
                          ? Formula::conj({a.truth, b.truth})
                          : Formula::disj({a.truth, b.truth});
            return v;
          }
          case PrimOp::kNot: {
            SymVal a = eval(e->args[0]);
            SymVal v;
            v.truth = Formula::negate(a.truth);
            return v;
          }
        }
        return SymVal{};
    }

    /**
     * Opt-in: prove the ideal result of a narrow-typed arithmetic
     * expression fits its declared width (so runtime wrapping is
     * provably a no-op).  The result is never assumed — wrapping
     * semantics remain the runtime truth when the proof fails.
     */
    void overflow_obligation(Expr* e, const LinTerm& term) {
        if (!overflow_obligations_) return;
        Type* t = program_.type_of(e);
        if (t->kind != TypeKind::kInt || t->bits >= 64) return;
        int64_t lo;
        int64_t hi;
        if (t->is_signed) {
            lo = -(int64_t{1} << (t->bits - 1));
            hi = (int64_t{1} << (t->bits - 1)) - 1;
        } else {
            lo = 0;
            hi = static_cast<int64_t>((uint64_t{1} << t->bits) - 1);
        }
        obligation(ObligationKind::kOverflow, e->span, e,
                   "result fits " + program_.store().to_string(t),
                   Formula::conj({Formula::le(LinTerm(lo), term),
                                  Formula::le(term, LinTerm(hi))}));
    }

    SymVal eval_call(Expr* e) {
        std::vector<SymVal> arg_vals;
        arg_vals.reserve(e->args.size());
        for (Expr* a : e->args) arg_vals.push_back(eval(a));
        if (e->callee_index < 0) return SymVal{};
        const FunctionDecl& callee =
            program_.program().functions[static_cast<size_t>(
                e->callee_index)];

        // Check callee preconditions with arguments substituted by
        // evaluating the clause in the callee's parameter frame.
        FrameSwap swap(this, callee, arg_vals);
        for (const Expr* r : callee.requires_clauses) {
            SymVal cond = eval(const_cast<Expr*>(r));
            swap.exit();
            obligation(ObligationKind::kRequireAtCall, e->span, e,
                       callee.name + " requires " + r->to_string(),
                       cond.truth);
            swap.enter();
        }

        // Assume the callee's postconditions about the fresh result.
        Type* result_type = program_.type_of(e);
        swap.exit();
        SymVal result = fresh_of_type(result_type);
        swap.enter();
        SymVal saved_result = result_;
        bool saved_in_ensures = in_ensures_;
        result_ = result;
        in_ensures_ = true;
        for (const Expr* en : callee.ensures_clauses) {
            SymVal fact = eval(const_cast<Expr*>(en));
            swap.exit();
            assume(fact.truth);
            swap.enter();
        }
        result_ = saved_result;
        in_ensures_ = saved_in_ensures;
        return result;
    }

    /** Temporarily runs eval in a callee's parameter frame. */
    class FrameSwap {
      public:
        FrameSwap(FunctionVerifier* owner, const FunctionDecl& callee,
                  const std::vector<SymVal>& args)
            : owner_(owner) {
            frame_.assign(static_cast<size_t>(callee.num_locals),
                          SymVal{});
            for (size_t i = 0;
                 i < callee.params.size() && i < args.size(); ++i) {
                frame_[static_cast<size_t>(callee.params[i].slot)] =
                    args[i];
            }
            enter();
        }
        ~FrameSwap() {
            if (entered_) exit();
        }
        void enter() {
            saved_ = std::move(owner_->state_);
            owner_->state_ = frame_;
            entered_ = true;
        }
        void exit() {
            owner_->state_ = std::move(saved_);
            entered_ = false;
        }

      private:
        FunctionVerifier* owner_;
        std::vector<SymVal> frame_;
        std::vector<SymVal> saved_;
        bool entered_ = false;
    };

    SymVal eval_if(Expr* e) {
        SymVal cond = eval(e->args[0]);

        // Run each branch against its own copy of the state, with the
        // branch condition assumed for its obligations.
        std::vector<SymVal> pre_state = state_;
        size_t assume_mark = assumptions_.size();

        assume(cond.truth);
        SymVal then_val = eval(e->args[1]);
        std::vector<SymVal> then_state = std::move(state_);
        std::vector<Formula::Ref> then_assumed(
            assumptions_.begin() + static_cast<long>(assume_mark) + 1,
            assumptions_.end());
        assumptions_.resize(assume_mark);

        state_ = pre_state;
        assume(Formula::negate(cond.truth));
        SymVal else_val = eval(e->args[2]);
        std::vector<SymVal> else_state = std::move(state_);
        std::vector<Formula::Ref> else_assumed(
            assumptions_.begin() + static_cast<long>(assume_mark) + 1,
            assumptions_.end());
        assumptions_.resize(assume_mark);

        // Join: conditional facts survive as implications.
        std::vector<Formula::Ref> then_parts = std::move(then_assumed);
        std::vector<Formula::Ref> else_parts = std::move(else_assumed);
        state_ = pre_state;

        // Merge slot values and the result value.
        for (size_t i = 0; i < state_.size(); ++i) {
            merge_slot(cond.truth, then_state[i], else_state[i],
                       &state_[i], then_parts, else_parts);
        }
        SymVal merged;
        merge_slot(cond.truth, then_val, else_val, &merged, then_parts,
                   else_parts);

        assume(Formula::implies(cond.truth,
                                Formula::conj(std::move(then_parts))));
        assume(Formula::implies(Formula::negate(cond.truth),
                                Formula::conj(std::move(else_parts))));
        return merged;
    }

    /**
     * Phi-joins a value across the two arms of an if: integer views get
     * a fresh symbol defined per-branch by implication; boolean views
     * get the exact if-then-else formula (a definition, not an
     * assumption, so it is sound for every slot type).
     */
    void merge_slot(const Formula::Ref& cond, const SymVal& then_v,
                    const SymVal& else_v, SymVal* out,
                    std::vector<Formula::Ref>& then_parts,
                    std::vector<Formula::Ref>& else_parts) {
        if (then_v.term == else_v.term && then_v.truth == else_v.truth &&
            then_v.array_len == else_v.array_len) {
            *out = then_v;
            return;
        }
        SymVal merged;
        merged.term = fresh();
        merged.array_len = then_v.array_len;  // lengths are immutable
        then_parts.push_back(Formula::eq(merged.term, then_v.term));
        else_parts.push_back(Formula::eq(merged.term, else_v.term));
        merged.truth = Formula::disj(
            {Formula::conj({cond, then_v.truth}),
             Formula::conj({Formula::negate(cond), else_v.truth})});
        *out = merged;
    }

    SymVal eval_while(Expr* e) {
        // Collect the slots the body can change.
        std::set<int> assigned;
        for (const Expr* b : e->body) collect_assigned(b, assigned);
        collect_assigned(e->args[0], assigned);

        // 1. Invariants hold on entry.
        for (Expr* inv : e->invariants) {
            SymVal v = eval(inv);
            obligation(ObligationKind::kInvariantEntry, inv->span, inv,
                       "invariant on entry: " + inv->to_string(),
                       v.truth);
        }

        // 2. Arbitrary iteration: havoc, assume invariant & condition,
        //    run body, require invariants preserved.
        havoc_slots(assigned);
        size_t mark = assumptions_.size();
        for (Expr* inv : e->invariants) assume(eval(inv).truth);
        SymVal cond = eval(e->args[0]);
        assume(cond.truth);
        for (Expr* item : e->body) eval(item);
        for (Expr* inv : e->invariants) {
            SymVal v = eval(inv);
            obligation(ObligationKind::kInvariantPreserved, inv->span,
                       inv,
                       "invariant preserved: " + inv->to_string(),
                       v.truth);
        }
        assumptions_.resize(mark);  // discard iteration-local facts

        // 3. After the loop: havoc again, assume invariants & !cond.
        havoc_slots(assigned);
        for (Expr* inv : e->invariants) assume(eval(inv).truth);
        SymVal exit_cond = eval(e->args[0]);
        assume(Formula::negate(exit_cond.truth));
        return SymVal{};
    }

    TypedProgram& program_;
    Solver& solver_;
    FunctionReport& report_;
    std::vector<SymVal> state_;
    std::vector<Formula::Ref> assumptions_;
    SymVar next_var_ = 0;
    SymVal result_;
    bool in_ensures_ = false;
    bool overflow_obligations_ = false;
};

}  // namespace

VerifyReport
verify_program_with_options(TypedProgram& program,
                            const VerifyOptions& options)
{
    VerifyReport report;
    Solver solver(options.solver);
    uint64_t start = now_ns();
    for (size_t i = 0; i < program.program().functions.size(); ++i) {
        FunctionReport fr;
        fr.function = program.program().functions[i].name;
        FunctionVerifier verifier(program, solver, fr,
                                  options.overflow_obligations);
        verifier.run(i);
        report.functions.push_back(std::move(fr));
    }
    report.elapsed_ms =
        static_cast<double>(now_ns() - start) / 1e6;
    report.solver_stats = solver.stats();
    report.index();
    return report;
}

VerifyReport
verify_program(TypedProgram& program, SolverConfig config)
{
    VerifyOptions options;
    options.solver = config;
    return verify_program_with_options(program, options);
}

}  // namespace bitc::verify
