#include "concurrency/supervisor.hpp"

#include <algorithm>
#include <chrono>

#include "support/metrics.hpp"
#include "support/sim.hpp"
#include "support/stats.hpp"
#include "support/trace.hpp"

namespace bitc::conc {

namespace {

/**
 * Open-state poll interval once the queue is drained: long enough to
 * stay off the lock, short enough that a closing input or an elapsed
 * cooldown is noticed promptly.  Shutdown does not wait even this
 * long — it rides the condvar.
 */
constexpr uint64_t kOpenPollNs = 100 * 1000;  // 100 us

void
notify_state(const WorkerHooks& hooks, uint32_t worker_id,
             BreakerState state)
{
    trace::emit(trace::Event::kBreakerState, worker_id,
                static_cast<uint64_t>(state));
    if (hooks.on_state) hooks.on_state(state);
}

}  // namespace

const char*
breaker_state_name(BreakerState s)
{
    switch (s) {
        case BreakerState::kClosed: return "closed";
        case BreakerState::kOpen: return "open";
        case BreakerState::kHalfOpen: return "half-open";
    }
    return "unknown";
}

void
WorkerContext::note_progress()
{
    if (breaker_.state() == BreakerState::kHalfOpen) {
        // The probe succeeded: the worker is healthy again.
        breaker_.on_progress();
        notify_state(hooks_, worker_id_, BreakerState::kClosed);
    } else {
        breaker_.on_progress();
    }
    *backoff_ns_ = initial_backoff_ns_;
}

bool
WorkerContext::stop_requested() const
{
    return sup_.shutdown_requested();
}

void
Supervisor::request_shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_.store(true, std::memory_order_release);
    }
    sim::cv_notify_all(shutdown_cv_);
}

bool
Supervisor::interruptible_wait(uint64_t ns)
{
    std::unique_lock<std::mutex> lock(mutex_);
    sim::cv_wait_for(shutdown_cv_, lock, std::chrono::nanoseconds(ns),
                     [this] {
                         return shutdown_.load(
                             std::memory_order_acquire);
                     });
    return shutdown_.load(std::memory_order_acquire);
}

void
Supervisor::supervise(uint32_t worker_id, const WorkerHooks& hooks)
{
    CircuitBreaker breaker(config_.max_restarts,
                           config_.restart_window_ms * 1'000'000);
    uint64_t initial_backoff_ns =
        std::max<uint64_t>(config_.backoff_ms, 1) * 1'000'000;
    uint64_t backoff_cap_ns =
        std::max<uint64_t>(config_.backoff_cap_ms, 1) * 1'000'000;
    uint64_t backoff_ns = initial_backoff_ns;
    WorkerContext ctx(*this, hooks, breaker, &backoff_ns,
                      initial_backoff_ns, worker_id);
    bool gauge_held = false;  // kPipeBreakersOpen level balance

    for (;;) {
        WorkerExit exit = hooks.body(ctx);
        if (exit == WorkerExit::kDone) break;

        uint64_t total_crashes =
            crashes_.fetch_add(1, std::memory_order_relaxed) + 1;
        metrics::count(metrics::Counter::kPipeWorkerCrashes);
        trace::emit(trace::Event::kWorkerCrash, worker_id,
                    total_crashes);

        if (breaker.on_crash(now_ns())) {
            breaker_opens_.fetch_add(1, std::memory_order_relaxed);
            metrics::count(metrics::Counter::kPipeBreakerOpens);
            if (!gauge_held) {
                metrics::gauge_add(metrics::Gauge::kPipeBreakersOpen);
                gauge_held = true;
            }
            notify_state(hooks, worker_id, BreakerState::kOpen);

            // Open: this shard is sick.  Shed its queued work into
            // the caller's accounting path until the cooldown runs
            // out (probe), the input closes (shutdown propagated), or
            // shutdown is requested outright.
            bool probe = false;
            for (;;) {
                if (shutdown_requested()) break;
                if (hooks.input_closed && hooks.input_closed()) break;
                if (breaker.try_probe(now_ns())) {
                    probe = true;
                    break;
                }
                if (!hooks.drain_one || !hooks.drain_one()) {
                    // Queue is empty; idle-wait a beat (shutdown
                    // interrupts even this).
                    if (interruptible_wait(kOpenPollNs)) break;
                }
            }
            if (!probe) break;  // abandoned while open
            metrics::gauge_sub(metrics::Gauge::kPipeBreakersOpen);
            gauge_held = false;
            notify_state(hooks, worker_id, BreakerState::kHalfOpen);
            backoff_ns = initial_backoff_ns;
            // The cooldown was the wait; probe restarts immediately.
        } else {
            // Plain restart: capped exponential backoff while the
            // bounded input channel absorbs the backpressure.
            if (interruptible_wait(backoff_ns)) break;
            backoff_ns = std::min(backoff_ns * 2, backoff_cap_ns);
        }

        if (shutdown_requested()) break;
        if (hooks.input_closed && hooks.input_closed()) {
            // Close propagation beat the restart: never resurrect a
            // worker into a pipeline that is already shutting down.
            break;
        }
        restarts_.fetch_add(1, std::memory_order_relaxed);
        metrics::count(metrics::Counter::kPipeWorkerRestarts);
        trace::emit(trace::Event::kWorkerRestart, worker_id,
                    backoff_ns);
        // Restart boundary: a schedule-exploration hand-off point (no
        // locks held here).
        sim::maybe_yield();
    }

    if (gauge_held) {
        metrics::gauge_sub(metrics::Gauge::kPipeBreakersOpen);
    }
    if (hooks.abandon) hooks.abandon();
}

}  // namespace bitc::conc
