#include "concurrency/stm.hpp"

#include <algorithm>

#include "support/fault.hpp"

namespace bitc::conc {

namespace {

constexpr uint64_t kLockBit = 1;

bool
is_locked(uint64_t version_lock)
{
    return (version_lock & kLockBit) != 0;
}

uint64_t
version_of(uint64_t version_lock)
{
    return version_lock >> 1;
}

}  // namespace

bool
Txn::in_write_set(const TVar* var) const
{
    return std::any_of(writes_.begin(), writes_.end(),
                       [&](const WriteEntry& w) { return w.var == var; });
}

uint64_t
Txn::read(TVar& var)
{
    // Read-own-writes: the latest buffered value wins.
    for (auto it = writes_.rbegin(); it != writes_.rend(); ++it) {
        if (it->var == &var) return it->value;
    }

    // TL2 consistent-read protocol: sample the version lock on both
    // sides of the value load and validate against the read stamp.
    uint64_t vl1 = var.version_lock_.load(std::memory_order_acquire);
    uint64_t value = var.value_.load(std::memory_order_acquire);
    uint64_t vl2 = var.version_lock_.load(std::memory_order_acquire);
    if (is_locked(vl1) || vl1 != vl2 || version_of(vl1) > rv_) {
        throw TxnConflict{};
    }
    reads_.push_back({&var, version_of(vl1)});
    return value;
}

void
Txn::write(TVar& var, uint64_t value)
{
    writes_.push_back({&var, value});
}

bool
Txn::commit()
{
    // Injected fault: the commit is refused as if a conflict had been
    // detected; the retry loop re-runs the transaction (or gives up,
    // under a TxnLimits bound).  No lock is taken, nothing published.
    if (fault::inject(fault::Site::kStmCommit)) {
        return false;
    }
    if (writes_.empty()) {
        // Read-only transactions validated incrementally; TL2 needs no
        // further work.
        return true;
    }

    // Deduplicate (last write wins) and sort by address so every
    // transaction acquires locks in a global order: no lock-order
    // deadlock by construction.
    std::vector<WriteEntry> final_writes;
    for (auto it = writes_.rbegin(); it != writes_.rend(); ++it) {
        bool seen = false;
        for (const WriteEntry& w : final_writes) {
            if (w.var == it->var) {
                seen = true;
                break;
            }
        }
        if (!seen) final_writes.push_back(*it);
    }
    std::sort(final_writes.begin(), final_writes.end(),
              [](const WriteEntry& a, const WriteEntry& b) {
                  return a.var < b.var;
              });

    // Acquire write locks.
    size_t locked = 0;
    for (; locked < final_writes.size(); ++locked) {
        TVar* var = final_writes[locked].var;
        uint64_t vl =
            var->version_lock_.load(std::memory_order_relaxed);
        if (is_locked(vl) ||
            !var->version_lock_.compare_exchange_strong(
                vl, vl | kLockBit, std::memory_order_acquire)) {
            break;
        }
    }
    if (locked != final_writes.size()) {
        for (size_t i = 0; i < locked; ++i) {
            TVar* var = final_writes[i].var;
            uint64_t vl =
                var->version_lock_.load(std::memory_order_relaxed);
            var->version_lock_.store(vl & ~kLockBit,
                                     std::memory_order_release);
        }
        return false;
    }

    uint64_t wv = stm_.next_stamp();

    // Validate the read set: every read version must be unchanged and
    // unlocked (unless we hold the lock ourselves).
    bool valid = true;
    for (const ReadEntry& r : reads_) {
        uint64_t vl =
            r.var->version_lock_.load(std::memory_order_acquire);
        bool locked_by_us = is_locked(vl) && in_write_set(r.var);
        if ((is_locked(vl) && !locked_by_us) ||
            version_of(vl) != r.version) {
            valid = false;
            break;
        }
    }

    if (!valid) {
        for (const WriteEntry& w : final_writes) {
            uint64_t vl =
                w.var->version_lock_.load(std::memory_order_relaxed);
            w.var->version_lock_.store(vl & ~kLockBit,
                                       std::memory_order_release);
        }
        return false;
    }

    // Publish values, then release locks with the new version.
    for (const WriteEntry& w : final_writes) {
        w.var->value_.store(w.value, std::memory_order_release);
    }
    for (const WriteEntry& w : final_writes) {
        w.var->version_lock_.store(wv << 1, std::memory_order_release);
    }
    return true;
}

}  // namespace bitc::conc
