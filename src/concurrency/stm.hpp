/**
 * @file
 * Software transactional memory: a word-based, lazy-versioning STM in
 * the TL2 style, with the composable blocking combinators (retry /
 * orElse) of Harris et al.'s "Composable Memory Transactions".
 *
 * This is the C4 apparatus: the paper's shared-state challenge is that
 * lock-based code does not compose (the bank-transfer example); STM
 * restores composition at a measurable cost in aborts and bookkeeping,
 * which bench_c4_shared_state quantifies against locks and channels.
 *
 * Simplifications relative to a production TL2:
 *  - retry() waits by bounded exponential backoff rather than parking
 *    on the read set (semantics preserved, wakeups less precise);
 *  - values are single 64-bit words (TVar), as in word-based STMs.
 */
#ifndef BITC_CONCURRENCY_STM_HPP
#define BITC_CONCURRENCY_STM_HPP

#include <atomic>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/metrics.hpp"
#include "support/status.hpp"
#include "support/trace.hpp"

namespace bitc::conc {

class Txn;

/** Transactional variable holding one 64-bit word. */
class TVar {
  public:
    explicit TVar(uint64_t initial = 0) : value_(initial) {}

    TVar(const TVar&) = delete;
    TVar& operator=(const TVar&) = delete;

    /** Non-transactional read, for tests and post-run inspection only. */
    uint64_t unsafe_load() const {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class Txn;

    // Low bit = write lock, remaining bits = commit version.
    std::atomic<uint64_t> version_lock_{0};
    std::atomic<uint64_t> value_;
};

/** Aggregate STM statistics (approximate under concurrency). */
struct StmStats {
    uint64_t commits = 0;
    uint64_t aborts = 0;
    uint64_t retries = 0;      ///< User-level retry() waits.
    uint64_t abort_storms = 0; ///< Txns that crossed the storm threshold.
};

/** Shared STM context: the global version clock plus statistics. */
class Stm {
  public:
    uint64_t read_stamp() const {
        return clock_.load(std::memory_order_acquire);
    }
    uint64_t next_stamp() {
        return clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
    }

    StmStats stats() const {
        return {commits_.load(std::memory_order_relaxed),
                aborts_.load(std::memory_order_relaxed),
                retries_.load(std::memory_order_relaxed),
                abort_storms_.load(std::memory_order_relaxed)};
    }

    // Each note also mirrors into the global metrics registry, so
    // process-wide telemetry aggregates every Stm instance while
    // stats() stays per-instance.
    void note_commit() {
        commits_.fetch_add(1, std::memory_order_relaxed);
        metrics::count(metrics::Counter::kStmCommits);
    }
    void note_abort() {
        aborts_.fetch_add(1, std::memory_order_relaxed);
        metrics::count(metrics::Counter::kStmAborts);
    }
    void note_retry() {
        retries_.fetch_add(1, std::memory_order_relaxed);
        metrics::count(metrics::Counter::kStmRetries);
    }
    void note_abort_storm() {
        abort_storms_.fetch_add(1, std::memory_order_relaxed);
        metrics::count(metrics::Counter::kStmAbortStorms);
    }

  private:
    std::atomic<uint64_t> clock_{0};
    std::atomic<uint64_t> commits_{0};
    std::atomic<uint64_t> aborts_{0};
    std::atomic<uint64_t> retries_{0};
    std::atomic<uint64_t> abort_storms_{0};
};

/** Internal control flow: the transaction saw an inconsistent state. */
struct TxnConflict {};
/** Internal control flow: the user called retry(). */
struct TxnRetry {};

/**
 * One transaction attempt.  Created by atomically(); user code calls
 * read/write/retry/or_else on the reference it is handed.
 */
class Txn {
  public:
    explicit Txn(Stm& stm) : stm_(stm), rv_(stm.read_stamp()) {}

    /** Transactional read; throws TxnConflict on inconsistency. */
    uint64_t read(TVar& var);

    /** Transactional (buffered) write. */
    void write(TVar& var, uint64_t value);

    /** Blocks the transaction until the world changes (then re-runs). */
    [[noreturn]] void retry() {
        stm_.note_retry();
        throw TxnRetry{};
    }

    /**
     * Composable alternative: runs @p first; if it retries, rolls its
     * writes back and runs @p second instead.  Reads from the failed
     * branch stay in the read set (required for correct blocking).
     */
    template <typename F1, typename F2>
    auto or_else(F1&& first, F2&& second) {
        size_t write_mark = writes_.size();
        try {
            return first(*this);
        } catch (const TxnRetry&) {
            writes_.resize(write_mark);
            return second(*this);
        }
    }

    /** Attempts to commit; true on success. */
    bool commit();

    size_t read_set_size() const { return reads_.size(); }
    size_t write_set_size() const { return writes_.size(); }

  private:
    struct ReadEntry {
        TVar* var;
        uint64_t version;
    };
    struct WriteEntry {
        TVar* var;
        uint64_t value;
    };

    bool in_write_set(const TVar* var) const;

    Stm& stm_;
    uint64_t rv_;  ///< Read stamp: snapshot version this txn runs at.
    std::vector<ReadEntry> reads_;
    std::vector<WriteEntry> writes_;
};

/** Bounds on a transaction's retry loop (try_atomically). */
struct TxnLimits {
    /** Give up with kResourceExhausted after this many attempts
     *  (0 = unlimited, the atomically() behaviour). */
    uint64_t max_attempts = 0;
};

/** Hard ceiling on a single backoff wait, in yield() spins.  Without a
 *  cap the retry()-wait doubling (x64) could reach ~65k spins per
 *  abort, turning an abort storm into seconds of dead time. */
inline constexpr uint32_t kMaxBackoffSpins = 4096;

/** Consecutive aborts of one transaction before it counts as a storm
 *  in StmStats::abort_storms. */
inline constexpr uint64_t kAbortStormThreshold = 8;

/**
 * Runs @p fn transactionally until it commits or the attempt bound is
 * exhausted.  Returns kResourceExhausted in the latter case — the
 * termination guarantee fault-injection tests (and any caller that
 * cannot tolerate livelock) rely on.  @p fn must be idempotent up to
 * its Txn operations and must not perform irrevocable side effects.
 */
template <typename Fn>
auto
try_atomically(Stm& stm, const TxnLimits& limits, Fn&& fn)
    -> std::conditional_t<
        std::is_void_v<decltype(fn(std::declval<Txn&>()))>, Status,
        Result<decltype(fn(std::declval<Txn&>()))>>
{
    constexpr bool kVoid =
        std::is_void_v<decltype(fn(std::declval<Txn&>()))>;
    uint32_t backoff = 1;
    uint64_t attempts = 0;
    while (true) {
        ++attempts;
        if (attempts == 1) trace::emit(trace::Event::kStmBegin);
        Txn txn(stm);
        bool retry_wait = false;
        try {
            if constexpr (kVoid) {
                fn(txn);
                if (txn.commit()) {
                    stm.note_commit();
                    metrics::observe(
                        metrics::Histogram::kStmRetriesPerTxn,
                        attempts - 1);
                    trace::emit(trace::Event::kStmCommit, attempts - 1);
                    return Status::ok();
                }
            } else {
                auto result = fn(txn);
                if (txn.commit()) {
                    stm.note_commit();
                    metrics::observe(
                        metrics::Histogram::kStmRetriesPerTxn,
                        attempts - 1);
                    trace::emit(trace::Event::kStmCommit, attempts - 1);
                    return result;
                }
            }
        } catch (const TxnConflict&) {
            // fall through to back off and rerun
        } catch (const TxnRetry&) {
            retry_wait = true;
        }
        stm.note_abort();
        trace::emit(trace::Event::kStmAbort, attempts);
        if (attempts == kAbortStormThreshold) {
            stm.note_abort_storm();
        }
        if (limits.max_attempts != 0 &&
            attempts >= limits.max_attempts) {
            return resource_exhausted_error(
                "transaction aborted " + std::to_string(attempts) +
                " times (attempt bound reached)");
        }
        // Bounded exponential backoff; retry() waits longer since it
        // needs another thread to make progress first.  Both arms are
        // capped so a storm cannot degenerate into unbounded waits.
        uint32_t spins = retry_wait ? backoff * 64 : backoff;
        if (spins > kMaxBackoffSpins) spins = kMaxBackoffSpins;
        for (uint32_t i = 0; i < spins; ++i) {
            std::this_thread::yield();
        }
        if (backoff < 1024) backoff *= 2;
    }
}

/**
 * Runs @p fn transactionally until it commits, returning its result.
 * @p fn must be idempotent up to its Txn operations (it may run many
 * times) and must not perform irrevocable side effects.
 */
template <typename Fn>
auto
atomically(Stm& stm, Fn&& fn)
{
    if constexpr (std::is_void_v<decltype(fn(std::declval<Txn&>()))>) {
        Status status =
            try_atomically(stm, TxnLimits{}, std::forward<Fn>(fn));
        (void)status;  // Unlimited attempts cannot fail.
    } else {
        auto result =
            try_atomically(stm, TxnLimits{}, std::forward<Fn>(fn));
        return std::move(result).take();
    }
}

}  // namespace bitc::conc

#endif  // BITC_CONCURRENCY_STM_HPP
