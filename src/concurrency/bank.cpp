#include "concurrency/bank.hpp"

#include <cassert>

#include "support/fault.hpp"

namespace bitc::conc {

// --- CoarseLockBank ----------------------------------------------------

CoarseLockBank::CoarseLockBank(size_t accounts, int64_t initial_balance)
    : balances_(accounts, initial_balance)
{
}

void
CoarseLockBank::deposit(size_t account, int64_t amount)
{
    std::lock_guard<std::mutex> lock(mutex_);
    balances_[account] += amount;
}

Status
CoarseLockBank::transfer(size_t from, size_t to, int64_t amount)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (balances_[from] < amount) {
        return failed_precondition_error("insufficient funds");
    }
    balances_[from] -= amount;
    balances_[to] += amount;
    return Status::ok();
}

int64_t
CoarseLockBank::balance(size_t account) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return balances_[account];
}

int64_t
CoarseLockBank::total() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    int64_t sum = 0;
    for (int64_t b : balances_) sum += b;
    return sum;
}

// --- FineLockBank ------------------------------------------------------

FineLockBank::FineLockBank(size_t accounts, int64_t initial_balance)
    : balances_(accounts, initial_balance)
{
    locks_.reserve(accounts);
    for (size_t i = 0; i < accounts; ++i) {
        locks_.push_back(std::make_unique<std::mutex>());
    }
}

void
FineLockBank::deposit(size_t account, int64_t amount)
{
    std::lock_guard<std::mutex> lock(*locks_[account]);
    balances_[account] += amount;
}

Status
FineLockBank::transfer(size_t from, size_t to, int64_t amount)
{
    assert(from != to);
    // Global lock order (by index) prevents deadlock between concurrent
    // opposite-direction transfers.
    size_t first = std::min(from, to);
    size_t second = std::max(from, to);
    std::lock_guard<std::mutex> lock_a(*locks_[first]);
    std::lock_guard<std::mutex> lock_b(*locks_[second]);
    if (balances_[from] < amount) {
        return failed_precondition_error("insufficient funds");
    }
    balances_[from] -= amount;
    balances_[to] += amount;
    return Status::ok();
}

int64_t
FineLockBank::balance(size_t account) const
{
    std::lock_guard<std::mutex> lock(*locks_[account]);
    return balances_[account];
}

int64_t
FineLockBank::total() const
{
    // Lock the world, in order. Correct, and exactly the scaling cliff
    // the composition argument predicts.
    for (auto& lock : locks_) lock->lock();
    int64_t sum = 0;
    for (int64_t b : balances_) sum += b;
    for (auto it = locks_.rbegin(); it != locks_.rend(); ++it) {
        (*it)->unlock();
    }
    return sum;
}

int64_t
FineLockBank::unsafe_total() const
{
    int64_t sum = 0;
    for (int64_t b : balances_) sum += b;
    return sum;
}

void
FineLockBank::nonatomic_transfer(size_t from, size_t to, int64_t amount,
                                 const std::function<void()>& between)
{
    deposit(from, -amount);
    // Preemption here exposes money in neither account.
    if (between) {
        between();
    } else {
        std::this_thread::yield();
    }
    deposit(to, amount);
}

// --- StmBank -------------------------------------------------------------

namespace {

int64_t
as_signed(uint64_t bits)
{
    return static_cast<int64_t>(bits);
}

uint64_t
as_bits(int64_t value)
{
    return static_cast<uint64_t>(value);
}

}  // namespace

StmBank::StmBank(size_t accounts, int64_t initial_balance)
{
    accounts_.reserve(accounts);
    for (size_t i = 0; i < accounts; ++i) {
        accounts_.push_back(
            std::make_unique<TVar>(as_bits(initial_balance)));
    }
}

void
StmBank::deposit(size_t account, int64_t amount)
{
    atomically(stm_, [&](Txn& txn) {
        int64_t current = as_signed(txn.read(*accounts_[account]));
        txn.write(*accounts_[account], as_bits(current + amount));
    });
}

Status
StmBank::transfer(size_t from, size_t to, int64_t amount)
{
    bool ok = atomically(stm_, [&](Txn& txn) {
        int64_t src = as_signed(txn.read(*accounts_[from]));
        if (src < amount) return false;
        int64_t dst = as_signed(txn.read(*accounts_[to]));
        txn.write(*accounts_[from], as_bits(src - amount));
        txn.write(*accounts_[to], as_bits(dst + amount));
        return true;
    });
    if (!ok) return failed_precondition_error("insufficient funds");
    return Status::ok();
}

void
StmBank::transfer_blocking(size_t from, size_t to, int64_t amount)
{
    atomically(stm_, [&](Txn& txn) {
        int64_t src = as_signed(txn.read(*accounts_[from]));
        if (src < amount) txn.retry();
        int64_t dst = as_signed(txn.read(*accounts_[to]));
        txn.write(*accounts_[from], as_bits(src - amount));
        txn.write(*accounts_[to], as_bits(dst + amount));
    });
}

int64_t
StmBank::balance(size_t account) const
{
    return atomically(stm_, [&](Txn& txn) {
        return as_signed(txn.read(*accounts_[account]));
    });
}

int64_t
StmBank::total() const
{
    // The composition payoff: a consistent whole-ledger snapshot is just
    // a bigger transaction, no global lock required.
    return atomically(stm_, [&](Txn& txn) {
        int64_t sum = 0;
        for (const auto& account : accounts_) {
            sum += as_signed(txn.read(*account));
        }
        return sum;
    });
}

// --- ActorBank -----------------------------------------------------------

WorkerExit
ActorBank::serve_once(WorkerContext& ctx)
{
    while (true) {
        auto request = requests_.recv();
        if (!request.is_ok()) {
            // Only a close (kCancelled after draining the backlog)
            // ends service.  Any other failure — e.g. an injected
            // kChannelOp fault — is transient: bailing out here
            // would strand queued clients on reply futures that
            // never resolve.  A transient failure after close still
            // ends service (the injection point fires before recv
            // can observe the close, so an every=1 plan would
            // otherwise spin forever); the abandon sweep answers
            // whatever is left.
            if (request.status().code() == StatusCode::kCancelled ||
                requests_.closed()) {
                return WorkerExit::kDone;
            }
            continue;
        }
        const Request& op = request.value();
        // The worker-crash site: the server dies mid-request.  The
        // crashing request is answered with the injected error first
        // — a client must never be left waiting on a dead server —
        // then the loop reports the crash and the supervisor restarts
        // it.  The ledger is a member, so it survives.
        if (fault::inject(fault::Site::kWorkerCrash)) {
            if (op.reply != nullptr) {
                op.reply->set_value(fault::injected_error(
                    fault::Site::kWorkerCrash));
            }
            return WorkerExit::kCrash;
        }
        Result<int64_t> reply = int64_t{0};
        switch (op.kind) {
          case OpKind::kDeposit:
            balances_[op.from] += op.amount;
            break;
          case OpKind::kTransfer:
            if (balances_[op.from] < op.amount) {
                reply = failed_precondition_error(
                    "insufficient funds");
            } else {
                balances_[op.from] -= op.amount;
                balances_[op.to] += op.amount;
            }
            break;
          case OpKind::kBalance:
            reply = balances_[op.from];
            break;
          case OpKind::kTotal: {
            int64_t sum = 0;
            for (int64_t b : balances_) sum += b;
            reply = sum;
            break;
          }
        }
        if (op.reply != nullptr) op.reply->set_value(std::move(reply));
        ctx.note_progress();
    }
}

ActorBank::ActorBank(size_t accounts, int64_t initial_balance,
                     SupervisorConfig supervision)
    : account_count_(accounts),
      balances_(accounts, initial_balance), requests_(256),
      supervisor_(supervision)
{
    server_ = std::thread([this] {
        WorkerHooks hooks;
        hooks.body = [this](WorkerContext& ctx) {
            return serve_once(ctx);
        };
        // Open breaker: queued clients get an error, never silence.
        hooks.drain_one = [this] {
            if (auto request = requests_.try_recv(); request.is_ok()) {
                if (request->reply != nullptr) {
                    request->reply->set_value(unavailable_error(
                        "bank server unavailable (breaker open)"));
                }
                return true;
            }
            return false;
        };
        hooks.input_closed = [this] { return requests_.drained(); };
        // Shutdown safety net, crash-abandon and normal exit alike:
        // close the channel and answer any stranded request with an
        // explicit error instead of leaving its client blocked on a
        // reply future forever (try_recv has no fault injection
        // point, so injected faults cannot hide one).
        hooks.abandon = [this] {
            requests_.close();
            for (auto leftover = requests_.try_recv();
                 leftover.is_ok(); leftover = requests_.try_recv()) {
                if (leftover->reply != nullptr) {
                    leftover->reply->set_value(cancelled_error(
                        "bank is shutting down"));
                }
            }
        };
        supervisor_.supervise(0, hooks);
    });
}

ActorBank::~ActorBank()
{
    shutdown();
}

void
ActorBank::shutdown()
{
    // Close before join: the close is what wakes the server out of a
    // blocking recv and lets it drain the backlog; joining first would
    // deadlock on a server that is still waiting for traffic.  The
    // supervisor shutdown request covers the other resting places —
    // a backoff sleep or an open-breaker wait.
    requests_.close();
    supervisor_.request_shutdown();
    if (server_.joinable()) server_.join();
}

Result<int64_t>
ActorBank::call(Request request) const
{
    std::promise<Result<int64_t>> promise;
    std::future<Result<int64_t>> future = promise.get_future();
    request.reply = &promise;
    Status sent = requests_.send(std::move(request));
    if (!sent.is_ok()) return sent;
    return future.get();
}

void
ActorBank::deposit(size_t account, int64_t amount)
{
    Request request;
    request.kind = OpKind::kDeposit;
    request.from = account;
    request.amount = amount;
    (void)call(request);
}

Status
ActorBank::transfer(size_t from, size_t to, int64_t amount)
{
    Request request;
    request.kind = OpKind::kTransfer;
    request.from = from;
    request.to = to;
    request.amount = amount;
    return call(request).to_status();
}

int64_t
ActorBank::balance(size_t account) const
{
    Request request;
    request.kind = OpKind::kBalance;
    request.from = account;
    auto reply = call(request);
    return reply.is_ok() ? reply.value() : 0;
}

int64_t
ActorBank::total() const
{
    Request request;
    request.kind = OpKind::kTotal;
    auto reply = call(request);
    return reply.is_ok() ? reply.value() : 0;
}

}  // namespace bitc::conc
