/**
 * @file
 * The bank-account composition apparatus from the shared-state
 * challenge (C4).
 *
 * The lecture's rendering of the paper-era argument: a correctly locked
 * account class does not compose into a correct transfer — preemption
 * between debit and credit exposes an intermediate state, and no amount
 * of careful coding inside the class can fix it; the locking
 * requirement becomes part of the API.  The implementations here make
 * that argument runnable:
 *
 *  - CoarseLockBank: one global lock — composes, does not scale.
 *  - FineLockBank:   per-account locks, address-ordered 2-phase
 *                    transfer — scales, but total() must lock the
 *                    world and compose-by-caller is unsafe (see
 *                    unsafe_total / nonatomic_transfer).
 *  - StmBank:        transactions compose; blocking transfer via retry.
 *  - ActorBank:      no shared state at all; a server thread owns the
 *                    ledger and clients message it over a Channel.
 */
#ifndef BITC_CONCURRENCY_BANK_HPP
#define BITC_CONCURRENCY_BANK_HPP

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "concurrency/channel.hpp"
#include "concurrency/stm.hpp"
#include "concurrency/supervisor.hpp"
#include "support/status.hpp"

namespace bitc::conc {

/** Shared interface all ledger implementations satisfy. */
class Bank {
  public:
    virtual ~Bank() = default;

    virtual const char* name() const = 0;
    virtual size_t account_count() const = 0;

    /** Adds @p amount (may be negative) to an account, unconditionally. */
    virtual void deposit(size_t account, int64_t amount) = 0;

    /**
     * Atomically moves @p amount from one account to another; fails
     * with kFailedPrecondition when funds are insufficient, leaving
     * both balances untouched.
     */
    virtual Status transfer(size_t from, size_t to, int64_t amount) = 0;

    virtual int64_t balance(size_t account) const = 0;

    /** Atomic snapshot of the sum of all balances. */
    virtual int64_t total() const = 0;
};

/** Single global mutex: trivially correct, serialises everything. */
class CoarseLockBank : public Bank {
  public:
    explicit CoarseLockBank(size_t accounts, int64_t initial_balance);

    const char* name() const override { return "coarse-lock"; }
    size_t account_count() const override { return balances_.size(); }
    void deposit(size_t account, int64_t amount) override;
    Status transfer(size_t from, size_t to, int64_t amount) override;
    int64_t balance(size_t account) const override;
    int64_t total() const override;

  private:
    mutable std::mutex mutex_;
    std::vector<int64_t> balances_;
};

/** Per-account locks; transfer locks both ends in address order. */
class FineLockBank : public Bank {
  public:
    explicit FineLockBank(size_t accounts, int64_t initial_balance);

    const char* name() const override { return "fine-lock"; }
    size_t account_count() const override { return balances_.size(); }
    void deposit(size_t account, int64_t amount) override;
    Status transfer(size_t from, size_t to, int64_t amount) override;
    int64_t balance(size_t account) const override;
    /** Correct but expensive: locks every account. */
    int64_t total() const override;

    /**
     * The composition trap, kept on purpose: sums balances with no
     * locks.  Under concurrent transfers this observes intermediate
     * states — the bug class the paper says the lock model cannot
     * abstract away.  Used by tests/examples to demonstrate, never by
     * correct code.
     */
    int64_t unsafe_total() const;

    /**
     * The other composition trap: a transfer built from two
     * individually-correct operations with no outer lock.  Exposes the
     * money-in-neither/both-accounts window.
     *
     * @p between runs between the debit and the credit — i.e. inside
     * the torn window — standing in for the preemption a scheduler
     * would inject.  Tests use it to observe the intermediate state
     * deterministically instead of racing for it; when empty, a plain
     * yield widens the window as before.
     */
    void nonatomic_transfer(size_t from, size_t to, int64_t amount,
                            const std::function<void()>& between = {});

  private:
    std::vector<std::unique_ptr<std::mutex>> locks_;
    std::vector<int64_t> balances_;
};

/** Transactional ledger: one TVar per account. */
class StmBank : public Bank {
  public:
    explicit StmBank(size_t accounts, int64_t initial_balance);

    const char* name() const override { return "stm"; }
    size_t account_count() const override { return accounts_.size(); }
    void deposit(size_t account, int64_t amount) override;
    Status transfer(size_t from, size_t to, int64_t amount) override;
    int64_t balance(size_t account) const override;
    int64_t total() const override;

    /**
     * Blocks (via transactional retry) until funds are available, then
     * transfers — the composable blocking Harris et al. demonstrate.
     */
    void transfer_blocking(size_t from, size_t to, int64_t amount);

    Stm& stm() { return stm_; }

  private:
    mutable Stm stm_;
    std::vector<std::unique_ptr<TVar>> accounts_;
};

/**
 * Actor ledger: a server thread owns the state; clients send messages.
 *
 * The server is *supervised* (see supervisor.hpp): an injected
 * worker-crash fault kills the serving loop mid-request, the crashing
 * request gets an error reply (never silence), and the supervisor
 * restarts the loop with backoff — the ledger survives because the
 * server owns it across restarts, not the dying loop iteration.  When
 * the restart budget is spent the breaker opens and queued requests
 * are answered with errors until the cooldown's half-open probe
 * succeeds.
 */
class ActorBank : public Bank {
  public:
    explicit ActorBank(size_t accounts, int64_t initial_balance,
                       SupervisorConfig supervision = {});
    ~ActorBank() override;

    const char* name() const override { return "actor"; }
    size_t account_count() const override { return account_count_; }
    void deposit(size_t account, int64_t amount) override;
    Status transfer(size_t from, size_t to, int64_t amount) override;
    int64_t balance(size_t account) const override;
    int64_t total() const override;

    /**
     * Stops the server: closes the request channel first (so no new
     * request can be enqueued and the backlog drains), then joins the
     * server thread.  Every request that was accepted before the
     * close gets a real reply; a request arriving during or after
     * shutdown gets a kCancelled error, never silence — a
     * client blocked on its reply future must always be released.
     * Idempotent; the destructor calls it.  Callers must still not
     * race shutdown() with the bank's own destruction.
     */
    void shutdown();

    /** The server's supervisor (restart/crash totals; test hook). */
    const Supervisor& supervision() const { return supervisor_; }

  private:
    enum class OpKind { kDeposit, kTransfer, kBalance, kTotal };
    struct Request {
        OpKind kind;
        size_t from = 0;
        size_t to = 0;
        int64_t amount = 0;
        std::promise<Result<int64_t>>* reply = nullptr;
    };

    Result<int64_t> call(Request request) const;
    WorkerExit serve_once(WorkerContext& ctx);

    size_t account_count_;
    /**
     * Owned by the server thread while it runs (clients go through
     * the channel); a member rather than a serve-loop local so the
     * ledger survives supervised restarts of the loop.
     */
    std::vector<int64_t> balances_;
    mutable Channel<Request> requests_;
    Supervisor supervisor_;
    std::thread server_;
};

}  // namespace bitc::conc

#endif  // BITC_CONCURRENCY_BANK_HPP
