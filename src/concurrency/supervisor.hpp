/**
 * @file
 * Erlang-style one-for-one supervision for channel-structured workers.
 *
 * PR 4's pipeline *degrades* under an armed fault plan — a poisoned
 * worker stays dead for the life of the process and its shard's work
 * is swept into the loss ledger.  Shapiro's F4 argument wants more:
 * systems code must keep running correctly under partial failure,
 * which means failed components are restarted, restart storms are
 * bounded, and permanently-sick shards are isolated without taking
 * the rest of the server down.  This module supplies that machinery,
 * deliberately in the Erlang supervisor shape (the CSP network-stack
 * study shows channel-owned workers are exactly where restart pays
 * off):
 *
 *  - A worker body runs inside Supervisor::supervise() on the
 *    worker's own thread.  When the body reports a crash (injected
 *    worker-crash fault, fault-exhaustion poison-exit, escalated
 *    Status), the supervisor restarts it after a capped exponential
 *    backoff — the worker's bounded input channel absorbs the
 *    backpressure while it is down.
 *  - A per-worker CircuitBreaker counts crashes inside a sliding
 *    window.  When the restart budget is exhausted the breaker trips
 *    open: the supervisor stops restarting and instead drains queued
 *    input into the caller's drop-with-accounting hook, so the
 *    conservation invariant survives even a fail-every-hit plan.
 *  - After a cooldown the breaker goes half-open and one probe
 *    restart runs.  First forward progress closes the breaker;
 *    another crash reopens it for a fresh cooldown.
 *  - Shutdown (close propagation reaching the worker, or an explicit
 *    request_shutdown()) always wins: it interrupts backoff sleeps
 *    and open-state waits, and the supervisor never resurrects a
 *    worker whose input is already closed and drained.
 *
 * Thread model: each CircuitBreaker lives on its worker's stack and
 * is touched only by that thread; breaker state is *published* to
 * other threads (e.g. upstream senders deciding to shed) through the
 * caller's on_state hook, which writes whatever atomic flag the
 * caller owns.  The Supervisor object itself is shared: its counters
 * are relaxed atomics and its shutdown latch is a mutex + condvar, so
 * the whole arrangement is TSan-clean by construction.
 */
#ifndef BITC_CONCURRENCY_SUPERVISOR_HPP
#define BITC_CONCURRENCY_SUPERVISOR_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>

namespace bitc::conc {

/** Circuit-breaker states (the classic three-state machine). */
enum class BreakerState : uint8_t {
    kClosed = 0,  ///< Healthy: crashes buy restarts.
    kOpen,        ///< Restart budget spent: shed work, wait out cooldown.
    kHalfOpen,    ///< Cooldown over: one probe restart in flight.
};

/** Stable name for traces and reports ("closed"/"open"/"half-open"). */
const char* breaker_state_name(BreakerState s);

/** Restart policy knobs shared by every worker of one supervisor. */
struct SupervisorConfig {
    /**
     * Crashes a worker may accumulate inside the window before its
     * breaker opens; i.e. the worker gets max_restarts restarts and
     * the (max_restarts + 1)-th crash trips the breaker.
     */
    uint32_t max_restarts = 3;
    /**
     * Sliding crash-counting window, and also the open-state cooldown
     * before the half-open probe (one knob, Erlang-style intensity).
     */
    uint64_t restart_window_ms = 1000;
    uint64_t backoff_ms = 1;       ///< First restart backoff.
    uint64_t backoff_cap_ms = 64;  ///< Exponential backoff cap.
};

/**
 * Per-worker crash budget and breaker state machine.  Not thread-safe
 * by design — one breaker belongs to one worker thread; time is
 * passed in explicitly so tests can drive the machine without
 * sleeping.
 */
class CircuitBreaker {
  public:
    CircuitBreaker(uint32_t max_restarts, uint64_t window_ns)
        : max_restarts_(max_restarts), window_ns_(window_ns) {}

    BreakerState state() const { return state_; }

    /**
     * Records a crash at time @p now.  Returns true when this crash
     * tripped the breaker open: either the (max_restarts + 1)-th
     * crash inside the window, or any crash of a half-open probe.
     */
    bool on_crash(uint64_t now) {
        if (state_ == BreakerState::kHalfOpen) {
            state_ = BreakerState::kOpen;
            opened_at_ = now;
            crash_times_.clear();
            return true;
        }
        while (!crash_times_.empty() &&
               now - crash_times_.front() > window_ns_) {
            crash_times_.pop_front();
        }
        crash_times_.push_back(now);
        if (state_ == BreakerState::kClosed &&
            crash_times_.size() > max_restarts_) {
            state_ = BreakerState::kOpen;
            opened_at_ = now;
            crash_times_.clear();
            return true;
        }
        return false;
    }

    /**
     * Forward progress: closes a half-open breaker and, in any state,
     * forgets crash history — a healthy worker's restart budget is
     * always full.
     */
    void on_progress() {
        if (state_ == BreakerState::kHalfOpen) {
            state_ = BreakerState::kClosed;
        }
        crash_times_.clear();
    }

    /**
     * In the open state, transitions to half-open once the cooldown
     * (one window) has elapsed; returns true on that transition.
     */
    bool try_probe(uint64_t now) {
        if (state_ != BreakerState::kOpen ||
            now - opened_at_ < window_ns_) {
            return false;
        }
        state_ = BreakerState::kHalfOpen;
        return true;
    }

  private:
    uint32_t max_restarts_;
    uint64_t window_ns_;
    BreakerState state_ = BreakerState::kClosed;
    std::deque<uint64_t> crash_times_;  ///< In-window crash times.
    uint64_t opened_at_ = 0;
};

/** How one execution of a worker body ended. */
enum class WorkerExit : uint8_t {
    kDone = 0,  ///< Input closed and drained: normal shutdown.
    kCrash,     ///< The worker died; the supervisor decides what next.
};

class Supervisor;
struct WorkerHooks;

/**
 * Handed to the worker body; the body reports liveness through it.
 * note_progress() after every successfully processed unit is what
 * closes a half-open breaker and refills the restart budget.
 */
class WorkerContext {
  public:
    /** One unit of work completed; resets backoff and crash budget. */
    void note_progress();

    /** True once the supervisor wants the body to return kDone. */
    bool stop_requested() const;

    uint32_t worker_id() const { return worker_id_; }

  private:
    friend class Supervisor;
    WorkerContext(Supervisor& sup, const WorkerHooks& hooks,
                  CircuitBreaker& breaker, uint64_t* backoff_ns,
                  uint64_t initial_backoff_ns, uint32_t worker_id)
        : sup_(sup), hooks_(hooks), breaker_(breaker),
          backoff_ns_(backoff_ns),
          initial_backoff_ns_(initial_backoff_ns),
          worker_id_(worker_id) {}

    Supervisor& sup_;
    const WorkerHooks& hooks_;
    CircuitBreaker& breaker_;
    uint64_t* backoff_ns_;
    uint64_t initial_backoff_ns_;
    uint32_t worker_id_;
};

/**
 * What the supervisor needs from the supervised component.  body is
 * mandatory; the rest default to sensible no-ops for components (like
 * the ActorBank server) that have no separate shed path.
 */
struct WorkerHooks {
    /** Runs the worker until done or crashed.  Called repeatedly. */
    std::function<WorkerExit(WorkerContext&)> body;

    /**
     * Open state: drop one queued input unit *with accounting* (the
     * conservation ledger must absorb it).  Returns false when the
     * queue is empty.  Default: nothing to drain.
     */
    std::function<bool()> drain_one;

    /**
     * True when the worker's input is closed and drained — shutdown
     * has propagated to this worker; restarting would resurrect it
     * into a dead pipeline.  Default: never.
     */
    std::function<bool()> input_closed;

    /**
     * Final cleanup after the last body exit, crash-abandon or normal
     * completion alike: close the input, sweep any stranded backlog
     * into the loss ledger.  Must be idempotent.  Default: nothing.
     */
    std::function<void()> abandon;

    /**
     * Breaker transition, called from the worker's own thread.  The
     * caller publishes this to its senders (e.g. an atomic per-shard
     * flag that reroutes batches to the drop path).  Default: nobody
     * listens.
     */
    std::function<void(BreakerState)> on_state;
};

/**
 * One-for-one supervisor.  One instance is shared by all workers of a
 * component (pipeline run, actor bank); supervise() runs on each
 * worker's own thread, so worker state never migrates across threads
 * and restart is just another loop iteration.
 */
class Supervisor {
  public:
    explicit Supervisor(SupervisorConfig config) : config_(config) {}

    Supervisor(const Supervisor&) = delete;
    Supervisor& operator=(const Supervisor&) = delete;

    /**
     * Runs @p hooks.body in a restart loop until it reports kDone,
     * its input closes, its breaker abandons it, or shutdown is
     * requested.  Returns only when the worker is finally down;
     * hooks.abandon() has run by then.
     */
    void supervise(uint32_t worker_id, const WorkerHooks& hooks);

    /**
     * Asks every supervised worker to stop: interrupts backoff sleeps
     * and open-state waits, and makes stop_requested() true.  Bodies
     * blocked in channel ops are reached the usual CSP way — close
     * their channel first.  Idempotent, callable from any thread.
     */
    void request_shutdown();

    bool shutdown_requested() const {
        return shutdown_.load(std::memory_order_acquire);
    }

    // Lifetime totals across all supervised workers (test hooks).
    uint64_t crashes() const {
        return crashes_.load(std::memory_order_relaxed);
    }
    uint64_t restarts() const {
        return restarts_.load(std::memory_order_relaxed);
    }
    uint64_t breaker_opens() const {
        return breaker_opens_.load(std::memory_order_relaxed);
    }

    const SupervisorConfig& config() const { return config_; }

  private:
    friend class WorkerContext;

    /**
     * Sleeps up to @p ns unless shutdown arrives first; returns true
     * when it did (the caller must stop, not restart).
     */
    bool interruptible_wait(uint64_t ns);

    SupervisorConfig config_;
    std::atomic<bool> shutdown_{false};
    std::atomic<uint64_t> crashes_{0};
    std::atomic<uint64_t> restarts_{0};
    std::atomic<uint64_t> breaker_opens_{0};
    mutable std::mutex mutex_;
    std::condition_variable shutdown_cv_;
};

}  // namespace bitc::conc

#endif  // BITC_CONCURRENCY_SUPERVISOR_HPP
