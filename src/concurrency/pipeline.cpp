#include "concurrency/pipeline.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <unordered_map>

#include "concurrency/channel.hpp"
#include "interop/marshal.hpp"
#include "memory/region_heap.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"
#include "support/trace.hpp"

namespace bitc::conc {

namespace {

using interop::kStageCount;

/**
 * Consecutive injected channel faults a worker absorbs before it
 * declares the channel poisoned.  Bounded so that even a fail-every-hit
 * plan drains the pipeline instead of livelocking it; large enough
 * that every realistic plan (nth=N, every=K with K >= 2) never
 * poisons anything.
 */
constexpr size_t kFaultRetryCap = 64;

/** Shard map: which worker of an @p n-worker stage owns @p flow. */
size_t
flow_shard(uint32_t flow, size_t n)
{
    // Multiplicative hash so adjacent flow ids spread across workers.
    uint64_t h = (uint64_t{flow} + 1) * 0x9e3779b97f4a7c15ull;
    return static_cast<size_t>((h >> 32) % n);
}

/** Big-endian 16-bit read of header word @p i (checksum lives at 5). */
uint64_t
wire_checksum(const PipePacket& p)
{
    return (uint64_t{p.wire[10]} << 8) | p.wire[11];
}

struct StageCounters {
    std::atomic<uint64_t> packets{0};
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> fault_retries{0};
};

/** Everything one run() shares between its threads. */
struct RunState {
    explicit RunState(const PipelineConfig& config) {
        for (size_t s = 0; s < kStageCount; ++s) {
            size_t n = config.workers[s] > 0 ? config.workers[s] : 1;
            live[s].store(n, std::memory_order_relaxed);
            for (size_t w = 0; w < n; ++w) {
                inputs[s].push_back(std::make_unique<Channel<PipeBatch>>(
                    config.queue_capacity));
            }
            breaker_open[s] = std::vector<std::atomic<bool>>(n);
            supervisors[s] =
                std::make_unique<Supervisor>(config.supervision);
        }
        sink = std::make_unique<Channel<PipeBatch>>(
            config.queue_capacity);
    }

    std::array<std::vector<std::unique_ptr<Channel<PipeBatch>>>,
               kStageCount>
        inputs;
    std::unique_ptr<Channel<PipeBatch>> sink;
    std::array<std::atomic<size_t>, kStageCount> live{};
    std::array<StageCounters, kStageCount> stages;

    /**
     * One supervisor per stage (so restart/crash totals report per
     * stage); each stage worker runs its life inside
     * supervisors[stage]->supervise() on its own thread.
     */
    std::array<std::unique_ptr<Supervisor>, kStageCount> supervisors;

    /**
     * Published breaker state per stage worker, written by that
     * worker's on_state hook and read by upstream Forwarders: true
     * means the shard is sick and its batches go straight to the
     * drop-with-accounting path instead of its queue.
     */
    std::array<std::vector<std::atomic<bool>>, kStageCount>
        breaker_open;

    std::atomic<uint64_t> dropped{0};
    std::atomic<uint64_t> fault_dropped{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> payload_checksum{0};
};

/** True when @p batch carries a deadline that has already passed. */
bool
expired(const PipeBatch& batch)
{
    return batch.deadline_ns != 0 && now_ns() > batch.deadline_ns;
}

/** Sheds @p batch with accounting (ledger + histogram + trace). */
void
shed_batch(RunState& rs, const PipeBatch& batch)
{
    uint64_t n = batch.packets.size();
    rs.shed.fetch_add(n, std::memory_order_relaxed);
    uint64_t now = now_ns();
    uint64_t late =
        now > batch.deadline_ns ? now - batch.deadline_ns : 0;
    metrics::observe(metrics::Histogram::kPipeShedLateNs, late);
    trace::emit(trace::Event::kBatchShed, n, late);
}

/** What one hand-off attempt lost, by ledger. */
struct ForwardLoss {
    uint64_t fault = 0;  ///< Injected faults / closed destination.
    uint64_t shed = 0;   ///< Batch deadline expired before it fit.
};

/**
 * Sends @p batch downstream, surviving injected channel faults.
 * Returns what was lost (all zeros on success): the whole batch goes
 * to the fault ledger when the destination is closed — a poisoned or
 * abandoned peer — or the retry cap is exhausted, and to the shed
 * ledger when the batch's deadline expired before the bounded queue
 * had room (try_send_until bounds the wait by the batch deadline, so
 * backpressure can never hold a batch past its usefulness).  Retry
 * needs the batch again after a failed send consumed it, so a copy is
 * kept only while the injector is armed; the unarmed fast path moves
 * the batch straight through.
 */
ForwardLoss
forward_batch(Channel<PipeBatch>& out, PipeBatch&& batch,
              size_t dest_stage, StageCounters& dest_counters)
{
    ForwardLoss loss;
    const uint64_t n = batch.packets.size();
    if (n == 0) return loss;
    const uint64_t deadline_ns = batch.deadline_ns;
    const std::chrono::steady_clock::time_point deadline{
        std::chrono::nanoseconds(deadline_ns)};
    auto send_once = [&](PipeBatch&& b) {
        return deadline_ns == 0
                   ? out.send(std::move(b))
                   : out.try_send_until(std::move(b), deadline);
    };
    Status sent = Status::ok();
    if (!fault::Injector::instance().armed()) {
        sent = send_once(std::move(batch));
    } else {
        for (size_t attempt = 0; attempt <= kFaultRetryCap;
             ++attempt) {
            PipeBatch copy = batch;
            sent = send_once(std::move(copy));
            if (sent.is_ok()) break;
            // A closed destination never reopens, and an expired
            // deadline never un-expires; retrying either is futile.
            if (sent.code() == StatusCode::kFailedPrecondition) break;
            if (sent.code() == StatusCode::kDeadlineExceeded) break;
            dest_counters.fault_retries.fetch_add(
                1, std::memory_order_relaxed);
        }
    }
    if (!sent.is_ok()) {
        if (sent.code() == StatusCode::kDeadlineExceeded) {
            loss.shed = n;
            uint64_t now = now_ns();
            metrics::observe(
                metrics::Histogram::kPipeShedLateNs,
                now > deadline_ns ? now - deadline_ns : 0);
            trace::emit(trace::Event::kBatchShed, n, 0);
        } else {
            loss.fault = n;
        }
        return loss;
    }
    metrics::count(metrics::Counter::kPipeBatches);
    trace::emit(trace::Event::kPipeHandoff, dest_stage, n);
    return loss;
}

/** Per-worker fan-out buffer: batches pending per downstream shard. */
class Forwarder {
  public:
    Forwarder(RunState& rs, size_t dest_stage, size_t batch_packets)
        : rs_(rs), dest_stage_(dest_stage),
          batch_packets_(batch_packets) {
        size_t n = dest_stage_ < kStageCount
                       ? rs_.inputs[dest_stage_].size()
                       : 1;
        pending_.resize(n);
    }

    /**
     * Deadline carried by packets pushed from now on; a pending batch
     * keeps the earliest deadline of any packet folded into it.
     * Workers call this once per input batch, the source once per
     * generated stamp.
     */
    void set_deadline(uint64_t deadline_ns) {
        current_deadline_ns_ = deadline_ns;
    }

    void push(PipePacket packet) {
        size_t d = pending_.size() == 1
                       ? 0
                       : flow_shard(packet.flow, pending_.size());
        PipeBatch& pb = pending_[d];
        if (current_deadline_ns_ != 0 &&
            (pb.deadline_ns == 0 ||
             current_deadline_ns_ < pb.deadline_ns)) {
            pb.deadline_ns = current_deadline_ns_;
        }
        pb.packets.push_back(std::move(packet));
        if (pb.packets.size() >= batch_packets_) flush(d);
    }

    void flush_all() {
        for (size_t d = 0; d < pending_.size(); ++d) flush(d);
    }

  private:
    Channel<PipeBatch>& channel(size_t d) {
        return dest_stage_ < kStageCount ? *rs_.inputs[dest_stage_][d]
                                         : *rs_.sink;
    }
    StageCounters& counters() {
        // Sink losses are charged to the last stage's ledger.
        return rs_.stages[dest_stage_ < kStageCount ? dest_stage_
                                                    : kStageCount - 1];
    }

    void flush(size_t d) {
        PipeBatch& pb = pending_[d];
        if (pb.packets.empty()) return;
        // A tripped downstream breaker reroutes the shard's batches
        // to the drop path before they ever touch the sick worker's
        // queue — fail fast, account exactly.
        if (dest_stage_ < kStageCount &&
            rs_.breaker_open[dest_stage_][d].load(
                std::memory_order_acquire)) {
            rs_.fault_dropped.fetch_add(pb.packets.size(),
                                        std::memory_order_relaxed);
            pb = PipeBatch{};
            return;
        }
        ForwardLoss loss = forward_batch(channel(d), std::move(pb),
                                         dest_stage_, counters());
        rs_.fault_dropped.fetch_add(loss.fault,
                                    std::memory_order_relaxed);
        rs_.shed.fetch_add(loss.shed, std::memory_order_relaxed);
        pb = PipeBatch{};
    }

    RunState& rs_;
    size_t dest_stage_;
    size_t batch_packets_;
    uint64_t current_deadline_ns_ = 0;
    std::vector<PipeBatch> pending_;
};

/** What a stage did with one packet. */
enum class Outcome { kForward, kDrop, kFault };

/** The per-stage work, shared by every worker of one stage. */
class StageProcessor {
  public:
    StageProcessor(const PipelineConfig& config, size_t stage,
                   const vm::BuiltProgram* built,
                   const std::vector<uint8_t>& payload, RunState& rs)
        : config_(config), stage_(stage), payload_(payload), rs_(rs) {
        if (config_.migrated && built != nullptr) {
            vm_ = built->instantiate(config_.vm);
            region_ = dynamic_cast<mem::RegionHeap*>(&vm_->heap());
        }
    }

    Outcome process(PipePacket& p) {
        Outcome outcome =
            vm_ != nullptr ? run_migrated(p) : run_legacy(p);
        if (outcome != Outcome::kForward) return outcome;
        // Native extras both worlds share: payload handling stays
        // un-migrated, and the classify lookup latency models the
        // blocking table miss the worker fleet exists to overlap.
        if (stage_ == interop::kChecksum && !payload_.empty()) {
            payload_sum_ += checksum_payload(p);
        }
        if (stage_ == interop::kClassify &&
            config_.lookup_latency_us > 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(
                config_.lookup_latency_us));
        }
        return Outcome::kForward;
    }

    /** Folds the private payload accumulator into the run state. */
    void fold() {
        rs_.payload_checksum.fetch_add(payload_sum_,
                                       std::memory_order_relaxed);
    }

  private:
    Outcome run_legacy(PipePacket& p) {
        switch (stage_) {
          case interop::kValidate:
            return interop::legacy_validate(p.wire) == 0
                       ? Outcome::kDrop
                       : Outcome::kForward;
          case interop::kDecrementTtl:
            interop::legacy_decrement_ttl(p.wire);
            return Outcome::kForward;
          case interop::kChecksum:
            interop::legacy_checksum(p.wire);
            return Outcome::kForward;
          case interop::kClassify:
            p.bucket = interop::legacy_classify(p.wire);
            return Outcome::kForward;
        }
        return Outcome::kForward;
    }

    Outcome run_migrated(PipePacket& p) {
        int64_t fields[interop::kFieldCount] = {0};
        Status in = interop::unmarshal_record(interop::packet_codec(),
                                              p.wire, fields);
        if (!in.is_ok()) return Outcome::kFault;
        int64_t range[2] = {static_cast<int64_t>(stage_),
                            static_cast<int64_t>(stage_ + 1)};
        auto result = vm_->call_with_buffer("run-stages", fields, range);
        if (region_ != nullptr) region_->reset_region();
        if (!result.is_ok()) return Outcome::kFault;
        if (result.value() == -1) return Outcome::kDrop;
        if (stage_ == interop::kClassify) p.bucket = result.value();
        Status out = interop::marshal_record(interop::packet_codec(),
                                             fields, p.wire);
        if (!out.is_ok()) return Outcome::kFault;
        return Outcome::kForward;
    }

    uint64_t checksum_payload(const PipePacket& p) const {
        // Ones'-complement-style sum over this packet's window of the
        // shared payload arena — real memory traversal per packet.
        size_t window = payload_.size() - config_.payload_bytes;
        size_t offset = window > 0 ? p.payload % window : 0;
        uint64_t sum = 0;
        for (size_t i = 0; i < config_.payload_bytes; ++i) {
            sum += payload_[offset + i];
        }
        return (sum & 0xffff) + (sum >> 16);
    }

    const PipelineConfig& config_;
    size_t stage_;
    const std::vector<uint8_t>& payload_;
    RunState& rs_;
    std::unique_ptr<vm::Vm> vm_;
    mem::RegionHeap* region_ = nullptr;
    uint64_t payload_sum_ = 0;
};

/**
 * One stage worker: drain the owned input channel, process, fan out
 * downstream, and on exit propagate the close when last-out.  The
 * whole life runs under the stage's Supervisor: the body below is one
 * worker *incarnation* — when it reports a crash (injected
 * worker-crash fault, or fault-exhaustion poison-exit), the
 * supervisor restarts it with backoff, a fresh StageProcessor (and
 * VM) each time, while the bounded input channel absorbs the
 * backpressure.  A worker that keeps crashing trips its breaker; the
 * on_state hook publishes that to upstream Forwarders, which reroute
 * the shard's batches to the drop path until the half-open probe
 * succeeds.
 */
void
stage_worker(const PipelineConfig& config, size_t stage, size_t worker,
             const vm::BuiltProgram* built,
             const std::vector<uint8_t>& payload, RunState& rs)
{
    Channel<PipeBatch>& in = *rs.inputs[stage][worker];
    // The forwarder outlives incarnations: packets already handed to
    // it survive a crash (only the in-flight batch dies with the
    // body), so the conservation ledger stays exact.
    Forwarder out(rs, stage + 1, config.batch_packets);

    uint64_t packets = 0;
    uint64_t batches = 0;

    WorkerHooks hooks;
    hooks.body = [&](WorkerContext& ctx) {
        StageProcessor processor(config, stage, built, payload, rs);
        size_t consecutive_faults = 0;
        WorkerExit exit = WorkerExit::kDone;
        while (true) {
            auto batch = in.recv();
            if (!batch.is_ok()) {
                if (batch.status().code() ==
                    StatusCode::kFailedPrecondition) {
                    break;  // closed and drained: normal shutdown
                }
                // Injected channel fault.  Transient unless it
                // repeats past the cap, at which point the worker
                // declares itself dead and escalates to the
                // supervisor (the poison-exit of PR 4, now a restart
                // opportunity instead of a permanent loss).
                rs.stages[stage].fault_retries.fetch_add(
                    1, std::memory_order_relaxed);
                if (++consecutive_faults > kFaultRetryCap) {
                    exit = WorkerExit::kCrash;
                    break;
                }
                continue;
            }
            consecutive_faults = 0;
            PipeBatch b = std::move(batch.value());
            // Deadline shed at stage entry: late work is dead work,
            // and processing it would only make the next stage later.
            if (expired(b)) {
                shed_batch(rs, b);
                ctx.note_progress();
                continue;
            }
            // The worker-crash site: this incarnation dies here, and
            // the batch it was holding dies with it (accounted to the
            // fault ledger — exactly what a segfaulting worker costs).
            if (fault::inject(fault::Site::kWorkerCrash)) {
                rs.fault_dropped.fetch_add(
                    b.packets.size(), std::memory_order_relaxed);
                exit = WorkerExit::kCrash;
                break;
            }
            out.set_deadline(b.deadline_ns);
            uint64_t t0 = now_ns();
            for (PipePacket& p : b.packets) {
                ++packets;
                switch (processor.process(p)) {
                  case Outcome::kDrop:
                    rs.dropped.fetch_add(1, std::memory_order_relaxed);
                    break;
                  case Outcome::kFault:
                    rs.fault_dropped.fetch_add(
                        1, std::memory_order_relaxed);
                    break;
                  case Outcome::kForward:
                    out.push(std::move(p));
                    break;
                }
            }
            ++batches;
            metrics::observe(metrics::Histogram::kPipeBatchNs,
                             now_ns() - t0);
            ctx.note_progress();
        }
        processor.fold();
        return exit;
    };
    hooks.drain_one = [&] {
        // Open breaker: shed the queue into the fault ledger —
        // try_recv has no injection point, so the drain always makes
        // progress no matter what plan is armed.
        if (auto leftover = in.try_recv()) {
            rs.fault_dropped.fetch_add(leftover->packets.size(),
                                       std::memory_order_relaxed);
            return true;
        }
        return false;
    };
    hooks.input_closed = [&] { return in.drained(); };
    hooks.abandon = [&] {
        // Close the input so upstream sends fail fast (they account
        // their own losses), then sweep the stranded backlog into the
        // fault ledger.  On the normal path the input is already
        // closed and drained, so both steps are no-ops.
        in.close();
        uint64_t stranded = 0;
        while (auto leftover = in.try_recv()) {
            stranded += leftover->packets.size();
        }
        rs.fault_dropped.fetch_add(stranded,
                                   std::memory_order_relaxed);
    };
    hooks.on_state = [&](BreakerState s) {
        rs.breaker_open[stage][worker].store(
            s == BreakerState::kOpen, std::memory_order_release);
    };

    rs.supervisors[stage]->supervise(static_cast<uint32_t>(worker),
                                     hooks);

    out.flush_all();
    rs.stages[stage].packets.fetch_add(packets,
                                       std::memory_order_relaxed);
    rs.stages[stage].batches.fetch_add(batches,
                                       std::memory_order_relaxed);
    trace::emit(trace::Event::kPipeStageExit, stage, packets);

    // Close propagation: the last worker out of this stage closes the
    // next stage's inputs (or the sink).  Workers still draining their
    // own inputs are unaffected — close never discards a backlog.
    if (rs.live[stage].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (stage + 1 < kStageCount) {
            for (auto& ch : rs.inputs[stage + 1]) ch->close();
        } else {
            rs.sink->close();
        }
    }
}

/** The sink: terminal consumer, verifier, and aggregate bookkeeper. */
struct SinkResult {
    uint64_t delivered = 0;
    uint64_t route_checksum = 0;
    uint64_t header_checksum_sum = 0;
    bool flows_in_order = true;
};

SinkResult
run_sink(RunState& rs)
{
    SinkResult result;
    std::unordered_map<uint32_t, uint64_t> last_seq;
    auto consume = [&](const PipeBatch& batch) {
        // The deadline is end-to-end: a batch that expired in the
        // last hop is shed at the sink too, not delivered late.
        if (expired(batch)) {
            shed_batch(rs, batch);
            return;
        }
        for (const PipePacket& p : batch.packets) {
            ++result.delivered;
            result.route_checksum +=
                static_cast<uint64_t>(p.bucket + 1);
            result.header_checksum_sum += wire_checksum(p);
            uint64_t& last = last_seq[p.flow];
            if (p.flow_seq <= last) result.flows_in_order = false;
            last = p.flow_seq;
        }
    };
    while (true) {
        auto batch = rs.sink->recv();
        if (batch.is_ok()) {
            consume(batch.value());
            continue;
        }
        if (batch.status().code() == StatusCode::kFailedPrecondition) {
            break;  // closed and drained
        }
        // Injected fault.  The sink can never abandon its channel
        // (that would lose delivered packets), so it falls back to
        // the injection-free try_recv until the close arrives —
        // upstream terminates under every plan, so this does too.
        rs.stages[kStageCount - 1].fault_retries.fetch_add(
            1, std::memory_order_relaxed);
        while (true) {
            if (auto direct = rs.sink->try_recv()) {
                consume(*direct);
            } else if (rs.sink->closed()) {
                break;
            } else {
                std::this_thread::yield();
            }
        }
        break;
    }
    return result;
}

}  // namespace

std::string
PipelineReport::to_string() const
{
    std::string out = str_format(
        "stage      workers    packets    batches  blocked_ms  "
        "depth_hw  fault_retries  crashes  restarts  breaker_opens\n");
    for (size_t s = 0; s < kStageCount; ++s) {
        const PipelineStageReport& st = stages[s];
        out += str_format(
            "%-10s %7zu %10llu %10llu %11.3f %9zu %14llu %8llu "
            "%9llu %14llu\n",
            interop::stage_name(s), st.workers,
            static_cast<unsigned long long>(st.packets),
            static_cast<unsigned long long>(st.batches),
            static_cast<double>(st.blocked_ns) / 1e6,
            st.depth_high_water,
            static_cast<unsigned long long>(st.fault_retries),
            static_cast<unsigned long long>(st.crashes),
            static_cast<unsigned long long>(st.restarts),
            static_cast<unsigned long long>(st.breaker_opens));
    }
    out += str_format(
        "generated=%llu delivered=%llu dropped=%llu "
        "fault_dropped=%llu shed=%llu in_order=%s conserved=%s\n",
        static_cast<unsigned long long>(generated),
        static_cast<unsigned long long>(delivered),
        static_cast<unsigned long long>(dropped),
        static_cast<unsigned long long>(fault_dropped),
        static_cast<unsigned long long>(shed),
        flows_in_order ? "yes" : "no", conserved() ? "yes" : "no");
    if (worker_crashes + worker_restarts + breaker_opens > 0) {
        out += str_format(
            "supervision: crashes=%llu restarts=%llu "
            "breaker_opens=%llu\n",
            static_cast<unsigned long long>(worker_crashes),
            static_cast<unsigned long long>(worker_restarts),
            static_cast<unsigned long long>(breaker_opens));
    }
    out += str_format(
        "throughput=%.0f pkt/s elapsed=%.3f ms route_checksum=%llu "
        "header_checksum_sum=%llu\n",
        packets_per_sec, elapsed_ms,
        static_cast<unsigned long long>(route_checksum),
        static_cast<unsigned long long>(header_checksum_sum));
    return out;
}

PacketPipeline::PacketPipeline(PipelineConfig config,
                               std::unique_ptr<vm::BuiltProgram> built)
    : config_(config), built_(std::move(built))
{
    for (size_t& w : config_.workers) w = w > 0 ? w : 1;
    if (config_.queue_capacity == 0) config_.queue_capacity = 1;
    if (config_.batch_packets == 0) config_.batch_packets = 1;
    if (config_.payload_bytes > 0) {
        // A shared read-only arena; packets index windows into it.
        payload_.resize(config_.payload_bytes + (1u << 12));
        Rng rng(config_.seed ^ 0xfeedfacecafebeefull);
        for (uint8_t& b : payload_) {
            b = static_cast<uint8_t>(rng.next());
        }
    }
}

Result<std::unique_ptr<PacketPipeline>>
PacketPipeline::create(PipelineConfig config)
{
    if (interop::packet_codec().layout().byte_size() > kPipeWireBytes) {
        return internal_error("packet wire format exceeds PipePacket");
    }
    std::unique_ptr<vm::BuiltProgram> built;
    if (config.migrated) {
        vm::BuildOptions options;
        options.compiler.elide_proved_checks = true;
        BITC_ASSIGN_OR_RETURN(
            built,
            vm::build_program(interop::migrated_stage_source(),
                              options));
    }
    return std::unique_ptr<PacketPipeline>(
        new PacketPipeline(config, std::move(built)));
}

Result<PipelineReport>
PacketPipeline::run(size_t packet_count)
{
    // Generate the packet stream up front (identical to what the
    // single-threaded MigrationPipeline sees for the same seed), with
    // flow ids and per-flow sequence numbers the sink verifies.
    std::vector<PipePacket> stream(packet_count);
    {
        Rng rng(config_.seed);
        std::unordered_map<uint32_t, uint64_t> seq;
        for (PipePacket& p : stream) {
            interop::generate_packet(
                rng, std::span<uint8_t>(p.wire.data(),
                                        kPipeWireBytes));
            p.flow = p.wire[15] & 0x3f;  // low src-addr byte: 64 flows
            p.payload = (uint32_t{p.wire[14]} << 8) | p.wire[15];
            p.flow_seq = ++seq[p.flow];
        }
    }

    RunState rs(config_);
    metrics::gauge_set(metrics::Gauge::kPipeWorkers,
                       config_.total_workers());

    std::vector<std::thread> threads;
    threads.reserve(config_.total_workers() + 1);
    uint64_t start = now_ns();

    // Source: shard the stream into first-stage batches, then close —
    // the close is the only end-of-input signal the pipeline has.
    // With a deadline budget configured, every packet is stamped
    // "now + budget" as it enters; the earliest stamp in a batch
    // becomes the batch deadline every hand-off honors.
    threads.emplace_back([this, &rs, &stream] {
        Forwarder out(rs, 0, config_.batch_packets);
        const uint64_t budget_ns = config_.deadline_ms * 1'000'000;
        for (PipePacket& p : stream) {
            if (budget_ns != 0) out.set_deadline(now_ns() + budget_ns);
            out.push(std::move(p));
        }
        out.flush_all();
        for (auto& ch : rs.inputs[0]) ch->close();
    });

    for (size_t s = 0; s < kStageCount; ++s) {
        for (size_t w = 0; w < config_.workers[s]; ++w) {
            threads.emplace_back([this, &rs, s, w] {
                stage_worker(config_, s, w, built_.get(), payload_,
                             rs);
            });
        }
    }

    SinkResult sink = run_sink(rs);
    for (std::thread& t : threads) t.join();
    uint64_t elapsed = now_ns() - start;

    PipelineReport report;
    report.generated = packet_count;
    report.delivered = sink.delivered;
    report.dropped = rs.dropped.load();
    report.fault_dropped = rs.fault_dropped.load();
    report.shed = rs.shed.load();
    report.route_checksum = sink.route_checksum;
    report.header_checksum_sum = sink.header_checksum_sum;
    report.payload_checksum = rs.payload_checksum.load();
    report.flows_in_order = sink.flows_in_order;
    report.elapsed_ms = static_cast<double>(elapsed) / 1e6;
    report.packets_per_sec =
        elapsed > 0 ? static_cast<double>(packet_count) * 1e9 /
                          static_cast<double>(elapsed)
                    : 0.0;
    for (size_t s = 0; s < kStageCount; ++s) {
        PipelineStageReport& st = report.stages[s];
        st.workers = config_.workers[s];
        st.packets = rs.stages[s].packets.load();
        st.batches = rs.stages[s].batches.load();
        st.fault_retries = rs.stages[s].fault_retries.load();
        st.crashes = rs.supervisors[s]->crashes();
        st.restarts = rs.supervisors[s]->restarts();
        st.breaker_opens = rs.supervisors[s]->breaker_opens();
        report.worker_crashes += st.crashes;
        report.worker_restarts += st.restarts;
        report.breaker_opens += st.breaker_opens;
        for (auto& ch : rs.inputs[s]) {
            st.blocked_ns += ch->blocked_ns();
            st.depth_high_water =
                std::max(st.depth_high_water, ch->depth_high_water());
        }
    }
    report.sink_depth_high_water = rs.sink->depth_high_water();
    report.sink_blocked_ns = rs.sink->blocked_ns();

    // Fold run totals into the registry at the run boundary, the same
    // discipline heap telemetry follows.
    metrics::count(metrics::Counter::kPipePacketsIn, report.generated);
    metrics::count(metrics::Counter::kPipePacketsOut,
                   report.delivered);
    metrics::count(metrics::Counter::kPipePacketsDropped,
                   report.dropped);
    metrics::count(metrics::Counter::kPipeFaultDrops,
                   report.fault_dropped);
    metrics::count(metrics::Counter::kPipePacketsShed, report.shed);
    return report;
}

Result<PipelineSpec>
parse_pipeline_spec(const std::string& spec)
{
    PipelineSpec out;
    if (spec.empty()) return out;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos) comma = spec.size();
        std::string clause = spec.substr(pos, comma - pos);
        pos = comma + 1;
        size_t eq = clause.find('=');
        if (eq == std::string::npos) {
            return invalid_argument_error(
                str_format("pipeline clause '%s' is not key=value",
                           clause.c_str()));
        }
        std::string key = clause.substr(0, eq);
        std::string value = clause.substr(eq + 1);
        auto as_count = [&]() -> Result<size_t> {
            char* end = nullptr;
            unsigned long long n =
                std::strtoull(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0') {
                return invalid_argument_error(str_format(
                    "pipeline %s wants a number, got '%s'",
                    key.c_str(), value.c_str()));
            }
            return static_cast<size_t>(n);
        };
        if (key == "workers") {
            // Either one count for all stages or s0:s1:s2:s3.
            std::array<size_t, kStageCount> workers{};
            size_t field = 0, vpos = 0;
            while (vpos <= value.size() && field <= kStageCount) {
                size_t colon = value.find(':', vpos);
                if (colon == std::string::npos) colon = value.size();
                char* end = nullptr;
                std::string tok = value.substr(vpos, colon - vpos);
                unsigned long long n =
                    std::strtoull(tok.c_str(), &end, 10);
                if (end == tok.c_str() || *end != '\0' || n == 0) {
                    return invalid_argument_error(str_format(
                        "bad worker count '%s'", tok.c_str()));
                }
                workers[field++] = static_cast<size_t>(n);
                vpos = colon + 1;
                if (colon == value.size()) break;
            }
            if (field == 1) {
                workers.fill(workers[0]);
            } else if (field != kStageCount) {
                return invalid_argument_error(
                    "workers wants 1 or 4 colon-separated counts");
            }
            out.config.workers = workers;
        } else if (key == "queue") {
            BITC_ASSIGN_OR_RETURN(out.config.queue_capacity,
                                  as_count());
        } else if (key == "batch") {
            BITC_ASSIGN_OR_RETURN(out.config.batch_packets,
                                  as_count());
        } else if (key == "packets") {
            BITC_ASSIGN_OR_RETURN(out.packets, as_count());
        } else if (key == "seed") {
            BITC_ASSIGN_OR_RETURN(out.config.seed, as_count());
        } else if (key == "payload") {
            BITC_ASSIGN_OR_RETURN(out.config.payload_bytes,
                                  as_count());
        } else if (key == "lookup-us") {
            BITC_ASSIGN_OR_RETURN(size_t us, as_count());
            out.config.lookup_latency_us =
                static_cast<uint32_t>(us);
        } else if (key == "restarts") {
            BITC_ASSIGN_OR_RETURN(size_t n, as_count());
            out.config.supervision.max_restarts =
                static_cast<uint32_t>(n);
        } else if (key == "window") {
            BITC_ASSIGN_OR_RETURN(size_t ms, as_count());
            out.config.supervision.restart_window_ms = ms;
        } else if (key == "backoff") {
            BITC_ASSIGN_OR_RETURN(size_t ms, as_count());
            out.config.supervision.backoff_ms = ms;
        } else if (key == "deadline") {
            BITC_ASSIGN_OR_RETURN(out.config.deadline_ms, as_count());
        } else if (key == "impl") {
            if (value == "legacy") {
                out.config.migrated = false;
            } else if (value == "bitc" || value == "migrated") {
                out.config.migrated = true;
            } else {
                return invalid_argument_error(str_format(
                    "pipeline impl '%s' (want legacy|bitc)",
                    value.c_str()));
            }
        } else {
            return invalid_argument_error(str_format(
                "unknown pipeline key '%s'", key.c_str()));
        }
    }
    return out;
}

}  // namespace bitc::conc
