#include "concurrency/pipeline.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <unordered_map>

#include "concurrency/channel.hpp"
#include "interop/marshal.hpp"
#include "memory/region_heap.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/sim.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"
#include "support/trace.hpp"

namespace bitc::conc {

namespace {

using interop::kStageCount;

/**
 * Consecutive injected channel faults a worker absorbs before it
 * declares the channel poisoned.  Bounded so that even a fail-every-hit
 * plan drains the pipeline instead of livelocking it; large enough
 * that every realistic plan (nth=N, every=K with K >= 2) never
 * poisons anything.
 */
constexpr size_t kFaultRetryCap = 64;

/** Shard map: which worker of an @p n-worker stage owns @p flow. */
size_t
flow_shard(uint32_t flow, size_t n)
{
    // Multiplicative hash so adjacent flow ids spread across workers.
    uint64_t h = (uint64_t{flow} + 1) * 0x9e3779b97f4a7c15ull;
    return static_cast<size_t>((h >> 32) % n);
}

/** Big-endian 16-bit read of header word @p i (checksum lives at 5). */
uint64_t
wire_checksum(const PipePacket& p)
{
    return (uint64_t{p.wire[10]} << 8) | p.wire[11];
}

struct StageCounters {
    std::atomic<uint64_t> packets{0};
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> fault_retries{0};
};

/** Everything one run() shares between its threads. */
struct RunState {
    explicit RunState(const PipelineConfig& config) {
        for (size_t s = 0; s < kStageCount; ++s) {
            size_t n = config.workers[s] > 0 ? config.workers[s] : 1;
            live[s].store(n, std::memory_order_relaxed);
            for (size_t w = 0; w < n; ++w) {
                inputs[s].push_back(std::make_unique<Channel<PipeBatch>>(
                    config.queue_capacity));
            }
            breaker_open[s] = std::vector<std::atomic<bool>>(n);
            supervisors[s] =
                std::make_unique<Supervisor>(config.supervision);
        }
        sink = std::make_unique<Channel<PipeBatch>>(
            config.queue_capacity);
        on_loss = config.on_loss;
    }

    std::array<std::vector<std::unique_ptr<Channel<PipeBatch>>>,
               kStageCount>
        inputs;
    std::unique_ptr<Channel<PipeBatch>> sink;
    std::array<std::atomic<size_t>, kStageCount> live{};
    std::array<StageCounters, kStageCount> stages;

    /**
     * One supervisor per stage (so restart/crash totals report per
     * stage); each stage worker runs its life inside
     * supervisors[stage]->supervise() on its own thread.
     */
    std::array<std::unique_ptr<Supervisor>, kStageCount> supervisors;

    /**
     * Published breaker state per stage worker, written by that
     * worker's on_state hook and read by upstream Forwarders: true
     * means the shard is sick and its batches go straight to the
     * drop-with-accounting path instead of its queue.
     */
    std::array<std::vector<std::atomic<bool>>, kStageCount>
        breaker_open;

    std::atomic<uint64_t> dropped{0};
    std::atomic<uint64_t> fault_dropped{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> payload_checksum{0};

    /** Copy of PipelineConfig::on_loss; empty when nobody listens. */
    std::function<void(uint32_t)> on_loss;
};

/** Reports every flow in @p batch to the loss callback, if any. */
void
note_lost(RunState& rs, const PipeBatch& batch)
{
    if (!rs.on_loss) return;
    for (const PipePacket& p : batch.packets) rs.on_loss(p.flow);
}

/** True when @p batch carries a deadline that has already passed. */
bool
expired(const PipeBatch& batch)
{
    return batch.deadline_ns != 0 && now_ns() > batch.deadline_ns;
}

/** Sheds @p batch with accounting (ledger + histogram + trace). */
void
shed_batch(RunState& rs, const PipeBatch& batch)
{
    uint64_t n = batch.packets.size();
    rs.shed.fetch_add(n, std::memory_order_relaxed);
    note_lost(rs, batch);
    uint64_t now = now_ns();
    uint64_t late =
        now > batch.deadline_ns ? now - batch.deadline_ns : 0;
    metrics::observe(metrics::Histogram::kPipeShedLateNs, late);
    trace::emit(trace::Event::kBatchShed, n, late);
}

/** What one hand-off attempt lost, by ledger. */
struct ForwardLoss {
    uint64_t fault = 0;  ///< Injected faults / closed destination.
    uint64_t shed = 0;   ///< Batch deadline expired before it fit.
};

/**
 * Sends @p batch downstream, surviving injected channel faults.
 * Returns what was lost (all zeros on success): the whole batch goes
 * to the fault ledger when the destination is closed — a poisoned or
 * abandoned peer — or the retry cap is exhausted, and to the shed
 * ledger when the batch's deadline expired before the bounded queue
 * had room (try_send_until bounds the wait by the batch deadline, so
 * backpressure can never hold a batch past its usefulness).  Retry
 * needs the batch again after a failed send consumed it, so a copy is
 * kept only while the injector is armed; the unarmed fast path moves
 * the batch straight through.
 */
ForwardLoss
forward_batch(Channel<PipeBatch>& out, PipeBatch&& batch,
              size_t dest_stage, StageCounters& dest_counters)
{
    ForwardLoss loss;
    const uint64_t n = batch.packets.size();
    if (n == 0) return loss;
    const uint64_t deadline_ns = batch.deadline_ns;
    const std::chrono::steady_clock::time_point deadline{
        std::chrono::nanoseconds(deadline_ns)};
    auto send_once = [&](PipeBatch&& b) {
        return deadline_ns == 0
                   ? out.send(std::move(b))
                   : out.try_send_until(std::move(b), deadline);
    };
    Status sent = Status::ok();
    if (!fault::Injector::instance().armed()) {
        sent = send_once(std::move(batch));
    } else {
        for (size_t attempt = 0; attempt <= kFaultRetryCap;
             ++attempt) {
            PipeBatch copy = batch;
            sent = send_once(std::move(copy));
            if (sent.is_ok()) break;
            // A closed destination never reopens, and an expired
            // deadline never un-expires; retrying either is futile.
            if (sent.code() == StatusCode::kCancelled) break;
            if (sent.code() == StatusCode::kDeadlineExceeded) break;
            dest_counters.fault_retries.fetch_add(
                1, std::memory_order_relaxed);
        }
    }
    if (!sent.is_ok()) {
        if (sent.code() == StatusCode::kDeadlineExceeded) {
            loss.shed = n;
            uint64_t now = now_ns();
            metrics::observe(
                metrics::Histogram::kPipeShedLateNs,
                now > deadline_ns ? now - deadline_ns : 0);
            trace::emit(trace::Event::kBatchShed, n, 0);
        } else {
            loss.fault = n;
        }
        return loss;
    }
    metrics::count(metrics::Counter::kPipeBatches);
    trace::emit(trace::Event::kPipeHandoff, dest_stage, n);
    return loss;
}

/** Per-worker fan-out buffer: batches pending per downstream shard. */
class Forwarder {
  public:
    Forwarder(RunState& rs, size_t dest_stage, size_t batch_packets)
        : rs_(rs), dest_stage_(dest_stage),
          batch_packets_(batch_packets) {
        size_t n = dest_stage_ < kStageCount
                       ? rs_.inputs[dest_stage_].size()
                       : 1;
        pending_.resize(n);
    }

    /**
     * Deadline carried by packets pushed from now on; a pending batch
     * keeps the earliest deadline of any packet folded into it.
     * Workers call this once per input batch, the source once per
     * generated stamp.
     */
    void set_deadline(uint64_t deadline_ns) {
        current_deadline_ns_ = deadline_ns;
    }

    void push(PipePacket packet) {
        size_t d = pending_.size() == 1
                       ? 0
                       : flow_shard(packet.flow, pending_.size());
        PipeBatch& pb = pending_[d];
        if (pb.packets.capacity() == 0) {
            // Fresh slot (or just flushed downstream): refill from
            // the recycler instead of growing a new vector.
            pb.packets = acquire_packet_vec(batch_packets_);
        }
        if (current_deadline_ns_ != 0 &&
            (pb.deadline_ns == 0 ||
             current_deadline_ns_ < pb.deadline_ns)) {
            pb.deadline_ns = current_deadline_ns_;
        }
        pb.packets.push_back(std::move(packet));
        if (pb.packets.size() >= batch_packets_) flush(d);
    }

    void flush_all() {
        for (size_t d = 0; d < pending_.size(); ++d) flush(d);
    }

  private:
    Channel<PipeBatch>& channel(size_t d) {
        return dest_stage_ < kStageCount ? *rs_.inputs[dest_stage_][d]
                                         : *rs_.sink;
    }
    StageCounters& counters() {
        // Sink losses are charged to the last stage's ledger.
        return rs_.stages[dest_stage_ < kStageCount ? dest_stage_
                                                    : kStageCount - 1];
    }

    void flush(size_t d) {
        PipeBatch& pb = pending_[d];
        if (pb.packets.empty()) return;
        // A tripped downstream breaker reroutes the shard's batches
        // to the drop path before they ever touch the sick worker's
        // queue — fail fast, account exactly.
        if (dest_stage_ < kStageCount &&
            rs_.breaker_open[dest_stage_][d].load(
                std::memory_order_acquire)) {
            rs_.fault_dropped.fetch_add(pb.packets.size(),
                                        std::memory_order_relaxed);
            note_lost(rs_, pb);
            recycle_packet_vec(std::move(pb.packets));
            pb = PipeBatch{};
            return;
        }
        // forward_batch consumes the batch even on failure, so the
        // flow ids a loss must report are captured up front (only
        // when someone listens — the fast path stays copy-free).
        // loss_flows_ is a member so the capture reuses one
        // allocation across every flush this worker ever does.
        loss_flows_.clear();
        if (rs_.on_loss) {
            loss_flows_.reserve(pb.packets.size());
            for (const PipePacket& p : pb.packets) {
                loss_flows_.push_back(p.flow);
            }
        }
        ForwardLoss loss = forward_batch(channel(d), std::move(pb),
                                         dest_stage_, counters());
        rs_.fault_dropped.fetch_add(loss.fault,
                                    std::memory_order_relaxed);
        rs_.shed.fetch_add(loss.shed, std::memory_order_relaxed);
        if (rs_.on_loss && loss.fault + loss.shed > 0) {
            for (uint32_t flow : loss_flows_) rs_.on_loss(flow);
        }
        pb = PipeBatch{};
    }

    RunState& rs_;
    size_t dest_stage_;
    size_t batch_packets_;
    uint64_t current_deadline_ns_ = 0;
    std::vector<PipeBatch> pending_;
    std::vector<uint32_t> loss_flows_;
};

/** What a stage did with one packet. */
enum class Outcome { kForward, kDrop, kFault };

/** The per-stage work, shared by every worker of one stage. */
class StageProcessor {
  public:
    StageProcessor(const PipelineConfig& config, size_t stage,
                   const vm::BuiltProgram* built,
                   const std::vector<uint8_t>& payload, RunState& rs)
        : config_(config), stage_(stage), payload_(payload), rs_(rs) {
        if (config_.migrated && built != nullptr) {
            vm_ = built->instantiate(config_.vm);
            region_ = dynamic_cast<mem::RegionHeap*>(&vm_->heap());
        }
    }

    Outcome process(PipePacket& p) {
        Outcome outcome =
            vm_ != nullptr ? run_migrated(p) : run_legacy(p);
        if (outcome != Outcome::kForward) return outcome;
        // Native extras both worlds share: payload handling stays
        // un-migrated, and the classify lookup latency models the
        // blocking table miss the worker fleet exists to overlap.
        if (stage_ == interop::kChecksum && !payload_.empty()) {
            payload_sum_ += checksum_payload(p);
        }
        if (stage_ == interop::kClassify &&
            config_.lookup_latency_us > 0) {
            sim::sleep_us(config_.lookup_latency_us);
        }
        return Outcome::kForward;
    }

    /** Folds the private payload accumulator into the run state. */
    void fold() {
        rs_.payload_checksum.fetch_add(payload_sum_,
                                       std::memory_order_relaxed);
    }

  private:
    Outcome run_legacy(PipePacket& p) {
        switch (stage_) {
          case interop::kValidate:
            return interop::legacy_validate(p.wire) == 0
                       ? Outcome::kDrop
                       : Outcome::kForward;
          case interop::kDecrementTtl:
            interop::legacy_decrement_ttl(p.wire);
            return Outcome::kForward;
          case interop::kChecksum:
            interop::legacy_checksum(p.wire);
            return Outcome::kForward;
          case interop::kClassify:
            p.bucket = interop::legacy_classify(p.wire);
            return Outcome::kForward;
        }
        return Outcome::kForward;
    }

    Outcome run_migrated(PipePacket& p) {
        int64_t fields[interop::kFieldCount] = {0};
        Status in = interop::unmarshal_record(interop::packet_codec(),
                                              p.wire, fields);
        if (!in.is_ok()) return Outcome::kFault;
        int64_t range[2] = {static_cast<int64_t>(stage_),
                            static_cast<int64_t>(stage_ + 1)};
        auto result = vm_->call_with_buffer("run-stages", fields, range);
        if (region_ != nullptr) region_->reset_region();
        if (!result.is_ok()) return Outcome::kFault;
        if (result.value() == -1) return Outcome::kDrop;
        if (stage_ == interop::kClassify) p.bucket = result.value();
        Status out = interop::marshal_record(interop::packet_codec(),
                                             fields, p.wire);
        if (!out.is_ok()) return Outcome::kFault;
        return Outcome::kForward;
    }

    uint64_t checksum_payload(const PipePacket& p) const {
        // Ones'-complement-style sum over this packet's window of the
        // shared payload arena — real memory traversal per packet.
        size_t window = payload_.size() - config_.payload_bytes;
        size_t offset = window > 0 ? p.payload % window : 0;
        uint64_t sum = 0;
        for (size_t i = 0; i < config_.payload_bytes; ++i) {
            sum += payload_[offset + i];
        }
        return (sum & 0xffff) + (sum >> 16);
    }

    const PipelineConfig& config_;
    size_t stage_;
    const std::vector<uint8_t>& payload_;
    RunState& rs_;
    std::unique_ptr<vm::Vm> vm_;
    mem::RegionHeap* region_ = nullptr;
    uint64_t payload_sum_ = 0;
};

/**
 * One stage worker: drain the owned input channel, process, fan out
 * downstream, and on exit propagate the close when last-out.  The
 * whole life runs under the stage's Supervisor: the body below is one
 * worker *incarnation* — when it reports a crash (injected
 * worker-crash fault, or fault-exhaustion poison-exit), the
 * supervisor restarts it with backoff, a fresh StageProcessor (and
 * VM) each time, while the bounded input channel absorbs the
 * backpressure.  A worker that keeps crashing trips its breaker; the
 * on_state hook publishes that to upstream Forwarders, which reroute
 * the shard's batches to the drop path until the half-open probe
 * succeeds.
 */
void
stage_worker(const PipelineConfig& config, size_t stage, size_t worker,
             const vm::BuiltProgram* built,
             const std::vector<uint8_t>& payload, RunState& rs)
{
    Channel<PipeBatch>& in = *rs.inputs[stage][worker];
    // The forwarder outlives incarnations: packets already handed to
    // it survive a crash (only the in-flight batch dies with the
    // body), so the conservation ledger stays exact.
    Forwarder out(rs, stage + 1, config.batch_packets);

    uint64_t packets = 0;
    uint64_t batches = 0;

    WorkerHooks hooks;
    hooks.body = [&](WorkerContext& ctx) {
        StageProcessor processor(config, stage, built, payload, rs);
        size_t consecutive_faults = 0;
        WorkerExit exit = WorkerExit::kDone;
        while (true) {
            // Flush-on-idle: pending fan-out batches only wait while
            // there is backlog to fold into them.  A streaming source
            // (the network front-end submits packets as they arrive)
            // may never fill a batch, so push what we have downstream
            // before blocking on an empty input.
            auto batch = in.try_recv();
            if (!batch.is_ok() &&
                batch.status().code() == StatusCode::kUnavailable) {
                out.flush_all();
                batch = in.recv();
            }
            if (!batch.is_ok()) {
                if (batch.status().code() == StatusCode::kCancelled) {
                    break;  // closed and drained: normal shutdown
                }
                // Injected channel fault.  Transient unless it
                // repeats past the cap, at which point the worker
                // declares itself dead and escalates to the
                // supervisor (the poison-exit of PR 4, now a restart
                // opportunity instead of a permanent loss).
                rs.stages[stage].fault_retries.fetch_add(
                    1, std::memory_order_relaxed);
                if (++consecutive_faults > kFaultRetryCap) {
                    exit = WorkerExit::kCrash;
                    break;
                }
                continue;
            }
            consecutive_faults = 0;
            PipeBatch b = std::move(batch.value());
            // Deadline shed at stage entry: late work is dead work,
            // and processing it would only make the next stage later.
            if (expired(b)) {
                shed_batch(rs, b);
                recycle_packet_vec(std::move(b.packets));
                ctx.note_progress();
                continue;
            }
            // The worker-crash site: this incarnation dies here, and
            // the batch it was holding dies with it (accounted to the
            // fault ledger — exactly what a segfaulting worker costs).
            if (fault::inject(fault::Site::kWorkerCrash)) {
                rs.fault_dropped.fetch_add(
                    b.packets.size(), std::memory_order_relaxed);
                note_lost(rs, b);
                recycle_packet_vec(std::move(b.packets));
                exit = WorkerExit::kCrash;
                break;
            }
            out.set_deadline(b.deadline_ns);
            uint64_t t0 = now_ns();
            for (PipePacket& p : b.packets) {
                ++packets;
                // A drop frame in flight (forward_drops): validate
                // already rejected it; later stages pass it through
                // untouched so the sink can answer its originator.
                if (p.bucket == kPipeDropBucket) {
                    out.push(std::move(p));
                    continue;
                }
                switch (processor.process(p)) {
                  case Outcome::kDrop:
                    if (config.forward_drops) {
                        p.bucket = kPipeDropBucket;
                        out.push(std::move(p));
                    } else {
                        rs.dropped.fetch_add(
                            1, std::memory_order_relaxed);
                    }
                    break;
                  case Outcome::kFault:
                    rs.fault_dropped.fetch_add(
                        1, std::memory_order_relaxed);
                    if (rs.on_loss) rs.on_loss(p.flow);
                    break;
                  case Outcome::kForward:
                    out.push(std::move(p));
                    break;
                }
            }
            ++batches;
            recycle_packet_vec(std::move(b.packets));
            metrics::observe(metrics::Histogram::kPipeBatchNs,
                             now_ns() - t0);
            ctx.note_progress();
        }
        processor.fold();
        return exit;
    };
    hooks.drain_one = [&] {
        // Open breaker: shed the queue into the fault ledger —
        // try_recv has no injection point, so the drain always makes
        // progress no matter what plan is armed.
        if (auto leftover = in.try_recv(); leftover.is_ok()) {
            rs.fault_dropped.fetch_add(leftover->packets.size(),
                                       std::memory_order_relaxed);
            note_lost(rs, *leftover);
            recycle_packet_vec(std::move(leftover->packets));
            return true;
        }
        return false;
    };
    hooks.input_closed = [&] { return in.drained(); };
    hooks.abandon = [&] {
        // Close the input so upstream sends fail fast (they account
        // their own losses), then sweep the stranded backlog into the
        // fault ledger.  On the normal path the input is already
        // closed and drained, so both steps are no-ops.
        in.close();
        uint64_t stranded = 0;
        for (auto leftover = in.try_recv(); leftover.is_ok();
             leftover = in.try_recv()) {
            stranded += leftover->packets.size();
            note_lost(rs, *leftover);
            recycle_packet_vec(std::move(leftover->packets));
        }
        rs.fault_dropped.fetch_add(stranded,
                                   std::memory_order_relaxed);
    };
    hooks.on_state = [&](BreakerState s) {
        rs.breaker_open[stage][worker].store(
            s == BreakerState::kOpen, std::memory_order_release);
    };

    rs.supervisors[stage]->supervise(static_cast<uint32_t>(worker),
                                     hooks);

    out.flush_all();
    rs.stages[stage].packets.fetch_add(packets,
                                       std::memory_order_relaxed);
    rs.stages[stage].batches.fetch_add(batches,
                                       std::memory_order_relaxed);
    trace::emit(trace::Event::kPipeStageExit, stage, packets);

    // Close propagation: the last worker out of this stage closes the
    // next stage's inputs (or the sink).  Workers still draining their
    // own inputs are unaffected — close never discards a backlog.
    if (rs.live[stage].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (stage + 1 < kStageCount) {
            for (auto& ch : rs.inputs[stage + 1]) ch->close();
        } else {
            rs.sink->close();
        }
    }
}

/** The sink: terminal consumer, verifier, and aggregate bookkeeper. */
struct SinkResult {
    uint64_t delivered = 0;
    uint64_t route_checksum = 0;
    uint64_t header_checksum_sum = 0;
    bool flows_in_order = true;
};

SinkResult
run_sink(RunState& rs)
{
    SinkResult result;
    std::unordered_map<uint32_t, uint64_t> last_seq;
    auto consume = [&](const PipeBatch& batch) {
        // The deadline is end-to-end: a batch that expired in the
        // last hop is shed at the sink too, not delivered late.
        if (expired(batch)) {
            shed_batch(rs, batch);
            return;
        }
        for (const PipePacket& p : batch.packets) {
            ++result.delivered;
            result.route_checksum +=
                static_cast<uint64_t>(p.bucket + 1);
            result.header_checksum_sum += wire_checksum(p);
            uint64_t& last = last_seq[p.flow];
            if (p.flow_seq <= last) result.flows_in_order = false;
            last = p.flow_seq;
        }
    };
    while (true) {
        auto batch = rs.sink->recv();
        if (batch.is_ok()) {
            consume(batch.value());
            recycle_packet_vec(std::move(batch.value().packets));
            continue;
        }
        if (batch.status().code() == StatusCode::kCancelled) {
            break;  // closed and drained
        }
        // Injected fault.  The sink can never abandon its channel
        // (that would lose delivered packets), so it falls back to
        // the injection-free try_recv until the close arrives —
        // upstream terminates under every plan, so this does too.
        rs.stages[kStageCount - 1].fault_retries.fetch_add(
            1, std::memory_order_relaxed);
        while (true) {
            if (auto direct = rs.sink->try_recv(); direct.is_ok()) {
                consume(*direct);
                recycle_packet_vec(std::move(direct->packets));
            } else if (direct.status().code() ==
                       StatusCode::kCancelled) {
                break;
            } else {
                // Poll on (virtual) time, not on a bare yield: the
                // upstream workers this wait depends on may be parked
                // in timed backoff/cooldown sleeps, and a yield-spinner
                // stays runnable forever — which would pin the
                // simulation's clock and livelock the run.
                sim::sleep_us(50);
            }
        }
        break;
    }
    return result;
}

/** Fills the shared read-only payload arena packets index into. */
void
fill_payload_arena(const PipelineConfig& config,
                   std::vector<uint8_t>& payload)
{
    if (config.payload_bytes == 0) return;
    payload.resize(config.payload_bytes + (1u << 12));
    Rng rng(config.seed ^ 0xfeedfacecafebeefull);
    for (uint8_t& b : payload) {
        b = static_cast<uint8_t>(rng.next());
    }
}

}  // namespace

namespace {

/** Freelist backing acquire/recycle_packet_vec.  Bounded so a burst
 *  cannot pin its high-water memory; deliberately leaked so batches
 *  recycled during static destruction still have somewhere to go. */
struct PacketVecPool {
    std::mutex mu;
    std::vector<std::vector<PipePacket>> free;
};

PacketVecPool&
packet_vec_pool()
{
    static PacketVecPool* pool = new PacketVecPool;
    return *pool;
}

constexpr size_t kMaxPooledVecs = 256;
constexpr size_t kMaxPooledVecCapacity = 4096;

}  // namespace

std::vector<PipePacket>
acquire_packet_vec(size_t reserve_hint)
{
    PacketVecPool& pool = packet_vec_pool();
    {
        std::lock_guard<std::mutex> lock(pool.mu);
        if (!pool.free.empty()) {
            std::vector<PipePacket> vec = std::move(pool.free.back());
            pool.free.pop_back();
            metrics::count(metrics::Counter::kNetPoolHits);
            return vec;
        }
    }
    metrics::count(metrics::Counter::kNetPoolMisses);
    std::vector<PipePacket> vec;
    vec.reserve(reserve_hint);
    return vec;
}

void
recycle_packet_vec(std::vector<PipePacket>&& vec)
{
    if (vec.capacity() == 0 ||
        vec.capacity() > kMaxPooledVecCapacity) {
        return;  // nothing worth keeping / too big to park
    }
    vec.clear();
    PacketVecPool& pool = packet_vec_pool();
    std::lock_guard<std::mutex> lock(pool.mu);
    if (pool.free.size() < kMaxPooledVecs) {
        pool.free.push_back(std::move(vec));
    }
}

std::string
PipelineReport::to_string() const
{
    std::string out = str_format(
        "stage      workers    packets    batches  blocked_ms  "
        "depth_hw  fault_retries  crashes  restarts  breaker_opens\n");
    for (size_t s = 0; s < kStageCount; ++s) {
        const PipelineStageReport& st = stages[s];
        out += str_format(
            "%-10s %7zu %10llu %10llu %11.3f %9zu %14llu %8llu "
            "%9llu %14llu\n",
            interop::stage_name(s), st.workers,
            static_cast<unsigned long long>(st.packets),
            static_cast<unsigned long long>(st.batches),
            static_cast<double>(st.blocked_ns) / 1e6,
            st.depth_high_water,
            static_cast<unsigned long long>(st.fault_retries),
            static_cast<unsigned long long>(st.crashes),
            static_cast<unsigned long long>(st.restarts),
            static_cast<unsigned long long>(st.breaker_opens));
    }
    out += str_format(
        "generated=%llu delivered=%llu dropped=%llu "
        "fault_dropped=%llu shed=%llu in_order=%s conserved=%s\n",
        static_cast<unsigned long long>(generated),
        static_cast<unsigned long long>(delivered),
        static_cast<unsigned long long>(dropped),
        static_cast<unsigned long long>(fault_dropped),
        static_cast<unsigned long long>(shed),
        flows_in_order ? "yes" : "no", conserved() ? "yes" : "no");
    if (worker_crashes + worker_restarts + breaker_opens > 0) {
        out += str_format(
            "supervision: crashes=%llu restarts=%llu "
            "breaker_opens=%llu\n",
            static_cast<unsigned long long>(worker_crashes),
            static_cast<unsigned long long>(worker_restarts),
            static_cast<unsigned long long>(breaker_opens));
    }
    out += str_format(
        "throughput=%.0f pkt/s elapsed=%.3f ms route_checksum=%llu "
        "header_checksum_sum=%llu\n",
        packets_per_sec, elapsed_ms,
        static_cast<unsigned long long>(route_checksum),
        static_cast<unsigned long long>(header_checksum_sum));
    return out;
}

// --- PipelineEngine ------------------------------------------------------

/**
 * Engine internals.  Defined here so it can hold the same RunState the
 * in-process run() shares with its source/sink threads; PacketPipeline
 * (a friend) reaches through it for exactly that reason.  The program
 * and payload arena are borrowed when PacketPipeline owns them across
 * runs, owned when the engine stands alone (the network server).
 */
struct PipelineEngine::Impl {
    explicit Impl(const PipelineConfig& c) : config(c), rs(c) {}

    PipelineConfig config;
    std::unique_ptr<vm::BuiltProgram> owned_built;
    const vm::BuiltProgram* built = nullptr;
    std::vector<uint8_t> owned_payload;
    const std::vector<uint8_t>* payload = nullptr;
    RunState rs;
    std::vector<std::thread> workers;
    bool started = false;
    bool finished = false;
};

PipelineEngine::PipelineEngine(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl))
{
}

PipelineEngine::~PipelineEngine()
{
    finish();
}

Result<std::unique_ptr<PipelineEngine>>
PipelineEngine::create(PipelineConfig config)
{
    if (interop::packet_codec().layout().byte_size() > kPipeWireBytes) {
        return internal_error("packet wire format exceeds PipePacket");
    }
    for (size_t& w : config.workers) w = w > 0 ? w : 1;
    if (config.queue_capacity == 0) config.queue_capacity = 1;
    if (config.batch_packets == 0) config.batch_packets = 1;
    auto impl = std::make_unique<Impl>(config);
    if (config.migrated) {
        vm::BuildOptions options;
        options.compiler.elide_proved_checks = true;
        BITC_ASSIGN_OR_RETURN(
            impl->owned_built,
            vm::build_program(interop::migrated_stage_source(),
                              options));
        impl->built = impl->owned_built.get();
    }
    fill_payload_arena(config, impl->owned_payload);
    impl->payload = &impl->owned_payload;
    return std::unique_ptr<PipelineEngine>(
        new PipelineEngine(std::move(impl)));
}

void
PipelineEngine::start()
{
    Impl& im = *impl_;
    assert(!im.started);
    im.started = true;
    metrics::gauge_set(metrics::Gauge::kPipeWorkers,
                       im.config.total_workers());
    im.workers.reserve(im.config.total_workers());
    for (size_t s = 0; s < kStageCount; ++s) {
        for (size_t w = 0; w < im.config.workers[s]; ++w) {
            im.workers.emplace_back(sim::spawn_thread(
                "stage-worker", [&im, s, w] {
                    stage_worker(im.config, s, w, im.built,
                                 *im.payload, im.rs);
                }));
        }
    }
}

size_t
PipelineEngine::shard_count() const
{
    return impl_->rs.inputs[0].size();
}

size_t
PipelineEngine::shard_for(uint32_t flow) const
{
    size_t n = impl_->rs.inputs[0].size();
    // Matches Forwarder::push exactly, so an externally submitted flow
    // lands on the same worker an in-process source would pick.
    return n == 1 ? 0 : flow_shard(flow, n);
}

Status
PipelineEngine::submit(size_t shard, PipeBatch&& batch)
{
    Channel<PipeBatch>& in = *impl_->rs.inputs[0][shard];
    if (batch.deadline_ns == 0) return in.send(std::move(batch));
    const std::chrono::steady_clock::time_point deadline{
        std::chrono::nanoseconds(batch.deadline_ns)};
    return in.try_send_until(std::move(batch), deadline);
}

Status
PipelineEngine::try_submit(size_t shard, const PipeBatch& batch)
{
    return impl_->rs.inputs[0][shard]->try_send(PipeBatch(batch));
}

Status
PipelineEngine::try_submit(size_t shard, PipeBatch&& batch)
{
    return impl_->rs.inputs[0][shard]->try_send_keep(batch);
}

bool
PipelineEngine::shard_sick(size_t shard) const
{
    return impl_->rs.breaker_open[0][shard].load(
        std::memory_order_acquire);
}

void
PipelineEngine::close_input()
{
    for (auto& ch : impl_->rs.inputs[0]) ch->close();
}

Channel<PipeBatch>&
PipelineEngine::sink_channel()
{
    return *impl_->rs.sink;
}

uint64_t
PipelineEngine::dropped() const
{
    return impl_->rs.dropped.load(std::memory_order_relaxed);
}

uint64_t
PipelineEngine::fault_dropped() const
{
    return impl_->rs.fault_dropped.load(std::memory_order_relaxed);
}

uint64_t
PipelineEngine::shed() const
{
    return impl_->rs.shed.load(std::memory_order_relaxed);
}

void
PipelineEngine::finish()
{
    Impl& im = *impl_;
    if (im.finished || !im.started) return;
    im.finished = true;
    // Defensive: workers only exit once the input closes; close is
    // idempotent, so a caller that already closed pays nothing.
    for (auto& ch : im.rs.inputs[0]) ch->close();
    for (std::thread& t : im.workers) sim::join_thread(t);
}

void
PipelineEngine::fill_stage_reports(PipelineReport& report) const
{
    const Impl& im = *impl_;
    for (size_t s = 0; s < kStageCount; ++s) {
        PipelineStageReport& st = report.stages[s];
        st.workers = im.config.workers[s];
        st.packets = im.rs.stages[s].packets.load();
        st.batches = im.rs.stages[s].batches.load();
        st.fault_retries = im.rs.stages[s].fault_retries.load();
        st.crashes = im.rs.supervisors[s]->crashes();
        st.restarts = im.rs.supervisors[s]->restarts();
        st.breaker_opens = im.rs.supervisors[s]->breaker_opens();
        report.worker_crashes += st.crashes;
        report.worker_restarts += st.restarts;
        report.breaker_opens += st.breaker_opens;
        for (const auto& ch : im.rs.inputs[s]) {
            st.blocked_ns += ch->blocked_ns();
            st.depth_high_water =
                std::max(st.depth_high_water, ch->depth_high_water());
        }
    }
    report.sink_depth_high_water = im.rs.sink->depth_high_water();
    report.sink_blocked_ns = im.rs.sink->blocked_ns();
}

const PipelineConfig&
PipelineEngine::config() const
{
    return impl_->config;
}

// --- PacketPipeline ------------------------------------------------------

PacketPipeline::PacketPipeline(PipelineConfig config,
                               std::unique_ptr<vm::BuiltProgram> built)
    : config_(config), built_(std::move(built))
{
    for (size_t& w : config_.workers) w = w > 0 ? w : 1;
    if (config_.queue_capacity == 0) config_.queue_capacity = 1;
    if (config_.batch_packets == 0) config_.batch_packets = 1;
    fill_payload_arena(config_, payload_);
}

Result<std::unique_ptr<PacketPipeline>>
PacketPipeline::create(PipelineConfig config)
{
    if (interop::packet_codec().layout().byte_size() > kPipeWireBytes) {
        return internal_error("packet wire format exceeds PipePacket");
    }
    std::unique_ptr<vm::BuiltProgram> built;
    if (config.migrated) {
        vm::BuildOptions options;
        options.compiler.elide_proved_checks = true;
        BITC_ASSIGN_OR_RETURN(
            built,
            vm::build_program(interop::migrated_stage_source(),
                              options));
    }
    return std::unique_ptr<PacketPipeline>(
        new PacketPipeline(config, std::move(built)));
}

Result<PipelineReport>
PacketPipeline::run(size_t packet_count)
{
    // Generate the packet stream up front (identical to what the
    // single-threaded MigrationPipeline sees for the same seed), with
    // flow ids and per-flow sequence numbers the sink verifies.
    std::vector<PipePacket> stream(packet_count);
    {
        Rng rng(config_.seed);
        std::unordered_map<uint32_t, uint64_t> seq;
        for (PipePacket& p : stream) {
            interop::generate_packet(
                rng, std::span<uint8_t>(p.wire.data(),
                                        kPipeWireBytes));
            p.flow = p.wire[15] & 0x3f;  // low src-addr byte: 64 flows
            p.payload = (uint32_t{p.wire[14]} << 8) | p.wire[15];
            p.flow_seq = ++seq[p.flow];
        }
    }

    // One engine lifecycle per run, borrowing the program and payload
    // arena this instance owns across runs.
    auto impl = std::make_unique<PipelineEngine::Impl>(config_);
    impl->built = built_.get();
    impl->payload = &payload_;
    PipelineEngine engine(std::move(impl));
    RunState& rs = engine.impl_->rs;

    uint64_t start = now_ns();
    engine.start();

    // Source: shard the stream into first-stage batches, then close —
    // the close is the only end-of-input signal the pipeline has.
    // With a deadline budget configured, every packet is stamped
    // "now + budget" as it enters; the earliest stamp in a batch
    // becomes the batch deadline every hand-off honors.
    std::thread source(sim::spawn_thread("source", [this, &rs,
                                                    &stream] {
        Forwarder out(rs, 0, config_.batch_packets);
        const uint64_t budget_ns = config_.deadline_ms * 1'000'000;
        for (PipePacket& p : stream) {
            if (budget_ns != 0) out.set_deadline(now_ns() + budget_ns);
            out.push(std::move(p));
        }
        out.flush_all();
        for (auto& ch : rs.inputs[0]) ch->close();
    }));

    SinkResult sink = run_sink(rs);
    sim::join_thread(source);
    engine.finish();
    uint64_t elapsed = now_ns() - start;

    PipelineReport report;
    report.generated = packet_count;
    report.delivered = sink.delivered;
    report.dropped = rs.dropped.load();
    report.fault_dropped = rs.fault_dropped.load();
    report.shed = rs.shed.load();
    report.route_checksum = sink.route_checksum;
    report.header_checksum_sum = sink.header_checksum_sum;
    report.payload_checksum = rs.payload_checksum.load();
    report.flows_in_order = sink.flows_in_order;
    report.elapsed_ms = static_cast<double>(elapsed) / 1e6;
    report.packets_per_sec =
        elapsed > 0 ? static_cast<double>(packet_count) * 1e9 /
                          static_cast<double>(elapsed)
                    : 0.0;
    engine.fill_stage_reports(report);

    // Fold run totals into the registry at the run boundary, the same
    // discipline heap telemetry follows.
    metrics::count(metrics::Counter::kPipePacketsIn, report.generated);
    metrics::count(metrics::Counter::kPipePacketsOut,
                   report.delivered);
    metrics::count(metrics::Counter::kPipePacketsDropped,
                   report.dropped);
    metrics::count(metrics::Counter::kPipeFaultDrops,
                   report.fault_dropped);
    metrics::count(metrics::Counter::kPipePacketsShed, report.shed);
    return report;
}

PipelineConfig
config_from_spec(const options::PipelineSpec& spec)
{
    PipelineConfig config;
    config.workers = spec.workers;
    config.queue_capacity = spec.queue_capacity;
    config.batch_packets = spec.batch_packets;
    config.payload_bytes = spec.payload_bytes;
    config.lookup_latency_us = spec.lookup_latency_us;
    config.migrated = spec.migrated;
    config.seed = spec.seed;
    config.supervision.max_restarts = spec.max_restarts;
    config.supervision.restart_window_ms = spec.restart_window_ms;
    config.supervision.backoff_ms = spec.backoff_ms;
    config.deadline_ms = spec.deadline_ms;
    return config;
}

Result<PipelineSpec>
parse_pipeline_spec(const std::string& spec)
{
    BITC_ASSIGN_OR_RETURN(options::PipelineSpec typed,
                          options::PipelineSpec::parse(spec));
    PipelineSpec out;
    out.config = config_from_spec(typed);
    out.packets = typed.packets;
    return out;
}

}  // namespace bitc::conc
