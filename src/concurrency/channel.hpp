/**
 * @file
 * Bounded MPMC channel: the message-passing alternative in the
 * shared-state experiment (C4).  Mirrors the Rust std::sync::mpsc /
 * Go-channel shape the lecture material shows: blocking send/recv,
 * close semantics, errors instead of exceptions.
 */
#ifndef BITC_CONCURRENCY_CHANNEL_HPP
#define BITC_CONCURRENCY_CHANNEL_HPP

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "support/fault.hpp"
#include "support/status.hpp"

namespace bitc::conc {

/**
 * Bounded multi-producer multi-consumer channel.
 *
 * send blocks while full; recv blocks while empty.  After close(),
 * sends fail immediately and recvs drain the backlog then fail with
 * kFailedPrecondition — the "iterate until disconnect" idiom.
 */
template <typename T>
class Channel {
  public:
    explicit Channel(size_t capacity) : capacity_(capacity) {}

    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    /** Blocking send. Fails if the channel is (or becomes) closed. */
    Status send(T value) {
        if (fault::inject(fault::Site::kChannelOp)) {
            return fault::injected_error(fault::Site::kChannelOp);
        }
        std::unique_lock<std::mutex> lock(mutex_);
        not_full_.wait(lock, [&] {
            return closed_ || queue_.size() < capacity_;
        });
        if (closed_) {
            return failed_precondition_error("send on closed channel");
        }
        queue_.push_back(std::move(value));
        lock.unlock();
        not_empty_.notify_one();
        return Status::ok();
    }

    /** Non-blocking send; false when full or closed. */
    bool try_send(T value) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || queue_.size() >= capacity_) return false;
            queue_.push_back(std::move(value));
        }
        not_empty_.notify_one();
        return true;
    }

    /**
     * Bounded-wait send: blocks until room, close, or @p deadline.
     * Close wins over an expired deadline (the peer's disconnect is
     * the more actionable fact); timeout fails kDeadlineExceeded.
     */
    template <typename Clock, typename Duration>
    Status try_send_until(
        T value,
        const std::chrono::time_point<Clock, Duration>& deadline) {
        if (fault::inject(fault::Site::kChannelOp)) {
            return fault::injected_error(fault::Site::kChannelOp);
        }
        std::unique_lock<std::mutex> lock(mutex_);
        bool ok = not_full_.wait_until(lock, deadline, [&] {
            return closed_ || queue_.size() < capacity_;
        });
        if (closed_) {
            return failed_precondition_error("send on closed channel");
        }
        if (!ok) {
            return deadline_exceeded_error("send timed out");
        }
        queue_.push_back(std::move(value));
        lock.unlock();
        not_empty_.notify_one();
        return Status::ok();
    }

    /** try_send_until with a relative timeout. */
    template <typename Rep, typename Period>
    Status try_send_for(
        T value, const std::chrono::duration<Rep, Period>& timeout) {
        return try_send_until(std::move(value),
                              std::chrono::steady_clock::now() +
                                  timeout);
    }

    /** Blocking receive. Fails once closed and drained. */
    Result<T> recv() {
        if (fault::inject(fault::Site::kChannelOp)) {
            return fault::injected_error(fault::Site::kChannelOp);
        }
        std::unique_lock<std::mutex> lock(mutex_);
        not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
        if (queue_.empty()) {
            return failed_precondition_error(
                "recv on closed, empty channel");
        }
        T value = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return value;
    }

    /**
     * Bounded-wait receive: blocks until data, close, or @p deadline.
     * The backlog always drains first; after that, close beats an
     * expired deadline, and a pure timeout fails kDeadlineExceeded.
     */
    template <typename Clock, typename Duration>
    Result<T> recv_until(
        const std::chrono::time_point<Clock, Duration>& deadline) {
        if (fault::inject(fault::Site::kChannelOp)) {
            return fault::injected_error(fault::Site::kChannelOp);
        }
        std::unique_lock<std::mutex> lock(mutex_);
        bool ok = not_empty_.wait_until(lock, deadline, [&] {
            return closed_ || !queue_.empty();
        });
        if (queue_.empty()) {
            if (closed_) {
                return failed_precondition_error(
                    "recv on closed, empty channel");
            }
            (void)ok;
            return deadline_exceeded_error("recv timed out");
        }
        T value = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return value;
    }

    /** recv_until with a relative timeout. */
    template <typename Rep, typename Period>
    Result<T> recv_for(
        const std::chrono::duration<Rep, Period>& timeout) {
        return recv_until(std::chrono::steady_clock::now() + timeout);
    }

    /** Non-blocking receive. */
    std::optional<T> try_recv() {
        std::optional<T> out;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (queue_.empty()) return std::nullopt;
            out = std::move(queue_.front());
            queue_.pop_front();
        }
        not_full_.notify_one();
        return out;
    }

    /** Closes the channel; wakes all waiters. Idempotent. */
    void close() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    bool closed() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    size_t size() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return queue_.size();
    }

  private:
    const size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<T> queue_;
    bool closed_ = false;
};

}  // namespace bitc::conc

#endif  // BITC_CONCURRENCY_CHANNEL_HPP
