/**
 * @file
 * Bounded MPMC channel: the message-passing alternative in the
 * shared-state experiment (C4).  Mirrors the Rust std::sync::mpsc /
 * Go-channel shape the lecture material shows: blocking send/recv,
 * close semantics, errors instead of exceptions.
 *
 * Telemetry: every channel keeps a queue-depth high-water mark and an
 * accumulated blocked-time total (backpressure evidence), and mirrors
 * traffic into the global metrics registry and trace ring.  Blocking
 * is detected by testing the wait predicate before waiting, so the
 * non-blocked fast path never reads a clock.
 */
#ifndef BITC_CONCURRENCY_CHANNEL_HPP
#define BITC_CONCURRENCY_CHANNEL_HPP

#include <cassert>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/sim.hpp"
#include "support/stats.hpp"
#include "support/status.hpp"
#include "support/trace.hpp"

namespace bitc::conc {

/**
 * Bounded multi-producer multi-consumer channel.
 *
 * send blocks while full; recv blocks while empty.  After close(),
 * sends fail immediately and recvs drain the backlog then fail with
 * kCancelled — the "iterate until disconnect" idiom.
 *
 * Every send/recv variant speaks the same Status vocabulary, so call
 * sites branch on codes instead of on which overload they called:
 *
 *   kCancelled        the channel is closed (and, for recv, drained);
 *                     the condition is permanent.
 *   kUnavailable      a non-blocking attempt found no room / no data;
 *                     retrying later can succeed.
 *   kDeadlineExceeded a bounded wait provably expired.
 *   kResourceExhausted an injected kChannelOp fault (blocking
 *                     variants only; the try_ forms are injection-free
 *                     so drain/shutdown paths always make progress).
 */
template <typename T>
class Channel {
  public:
    explicit Channel(size_t capacity) : capacity_(capacity) {}

    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    /** Blocking send. Fails if the channel is (or becomes) closed. */
    Status send(T value) {
        sim::maybe_yield();  // hand-off point; no locks held yet
        if (fault::inject(fault::Site::kChannelOp)) {
            return fault::injected_error(fault::Site::kChannelOp);
        }
        std::unique_lock<std::mutex> lock(mutex_);
        if (!send_ready()) {
            BlockScope blocked(*this, /*recv=*/false);
            sim::cv_wait(not_full_, lock,
                         [&] { return send_ready(); });
        }
        if (closed_) {
            return cancelled_error("send on closed channel");
        }
        queue_.push_back(std::move(value));
        note_send();
        lock.unlock();
        sim::cv_notify_one(not_empty_);
        return Status::ok();
    }

    /**
     * Non-blocking send: kCancelled when closed, kUnavailable when
     * full.  Injection-free by design (like try_recv), so shutdown and
     * event-loop paths can always make progress under a fault storm.
     */
    Status try_send(T value) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_) {
                return cancelled_error("send on closed channel");
            }
            if (queue_.size() >= capacity_) {
                return unavailable_error("channel full");
            }
            queue_.push_back(std::move(value));
            note_send();
        }
        // No checkpoint here: try_send is called from event loops that
        // hold their own locks (a parked thread must never pin one).
        sim::cv_notify_one(not_empty_);
        return Status::ok();
    }

    /**
     * Non-blocking send that preserves its argument on failure: the
     * move out of @p value happens only when the enqueue succeeds, so
     * a backpressured caller can park the very same object and retry
     * later without ever copying it.  Injection-free like try_send.
     */
    Status try_send_keep(T& value) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_) {
                return cancelled_error("send on closed channel");
            }
            if (queue_.size() >= capacity_) {
                return unavailable_error("channel full");
            }
            queue_.push_back(std::move(value));
            note_send();
        }
        sim::cv_notify_one(not_empty_);
        return Status::ok();
    }

    /**
     * Bounded-wait send: blocks until room, close, or @p deadline.
     * The outcome is decided by re-inspecting channel state under the
     * lock after the wait, never by the timeout flag alone:
     *
     *  1. closed      -> kCancelled (close beats deadline — the
     *                    peer's disconnect is the more actionable
     *                    fact, even when the wait also timed out);
     *  2. room        -> enqueue (space freed between the wakeup and
     *                    the re-check is used, not reported as a
     *                    timeout);
     *  3. otherwise   -> the wait provably expired: kDeadlineExceeded.
     */
    template <typename Clock, typename Duration>
    Status try_send_until(
        T value,
        const std::chrono::time_point<Clock, Duration>& deadline) {
        sim::maybe_yield();  // hand-off point; no locks held yet
        if (fault::inject(fault::Site::kChannelOp)) {
            return fault::injected_error(fault::Site::kChannelOp);
        }
        std::unique_lock<std::mutex> lock(mutex_);
        bool timed_out = false;
        if (!send_ready()) {
            BlockScope blocked(*this, /*recv=*/false);
            timed_out = !sim::cv_wait_until(
                not_full_, lock, deadline,
                [&] { return send_ready(); });
        }
        if (closed_) {
            return cancelled_error("send on closed channel");
        }
        if (queue_.size() < capacity_) {
            queue_.push_back(std::move(value));
            note_send();
            lock.unlock();
            sim::cv_notify_one(not_empty_);
            return Status::ok();
        }
        // Not closed and still full: the only way here is an expired
        // wait (a satisfied predicate implies one of the cases above,
        // and the lock has been held since it was evaluated).
        assert(timed_out);
        (void)timed_out;
        return deadline_exceeded_error("send timed out");
    }

    /** try_send_until with a relative timeout. */
    template <typename Rep, typename Period>
    Status try_send_for(
        T value, const std::chrono::duration<Rep, Period>& timeout) {
        // Anchor at now_ns(), not steady_clock::now(): the two agree
        // off-sim, and under a simulation the deadline must live on
        // the virtual clock the wait is judged against.
        return try_send_until(
            std::move(value),
            std::chrono::steady_clock::time_point(
                std::chrono::nanoseconds(now_ns())) +
                timeout);
    }

    /** Blocking receive. Fails once closed and drained. */
    Result<T> recv() {
        sim::maybe_yield();  // hand-off point; no locks held yet
        if (fault::inject(fault::Site::kChannelOp)) {
            return fault::injected_error(fault::Site::kChannelOp);
        }
        std::unique_lock<std::mutex> lock(mutex_);
        if (!recv_ready()) {
            BlockScope blocked(*this, /*recv=*/true);
            sim::cv_wait(not_empty_, lock,
                         [&] { return recv_ready(); });
        }
        if (queue_.empty()) {
            return cancelled_error("recv on closed, empty channel");
        }
        T value = std::move(queue_.front());
        queue_.pop_front();
        note_recv();
        lock.unlock();
        sim::cv_notify_one(not_full_);
        return value;
    }

    /**
     * Bounded-wait receive: blocks until data, close, or @p deadline.
     * The outcome is decided by re-inspecting channel state under the
     * lock after the wait, never by the timeout flag alone:
     *
     *  1. data queued -> deliver it (the backlog always drains first;
     *                    a value enqueued between the wakeup and the
     *                    re-check is delivered, not reported as a
     *                    timeout);
     *  2. closed      -> kCancelled (close beats deadline, even when
     *                    the wait also timed out);
     *  3. otherwise   -> the wait provably expired: kDeadlineExceeded.
     */
    template <typename Clock, typename Duration>
    Result<T> recv_until(
        const std::chrono::time_point<Clock, Duration>& deadline) {
        sim::maybe_yield();  // hand-off point; no locks held yet
        if (fault::inject(fault::Site::kChannelOp)) {
            return fault::injected_error(fault::Site::kChannelOp);
        }
        std::unique_lock<std::mutex> lock(mutex_);
        bool timed_out = false;
        if (!recv_ready()) {
            BlockScope blocked(*this, /*recv=*/true);
            timed_out = !sim::cv_wait_until(
                not_empty_, lock, deadline,
                [&] { return recv_ready(); });
        }
        if (!queue_.empty()) {
            T value = std::move(queue_.front());
            queue_.pop_front();
            note_recv();
            lock.unlock();
            sim::cv_notify_one(not_full_);
            return value;
        }
        if (closed_) {
            return cancelled_error("recv on closed, empty channel");
        }
        // Empty and not closed: the only way here is an expired wait
        // (a satisfied predicate implies one of the cases above, and
        // the lock has been held since it was evaluated).
        assert(timed_out);
        (void)timed_out;
        return deadline_exceeded_error("recv timed out");
    }

    /** recv_until with a relative timeout. */
    template <typename Rep, typename Period>
    Result<T> recv_for(
        const std::chrono::duration<Rep, Period>& timeout) {
        // Anchored at now_ns() for the same reason as try_send_for.
        return recv_until(std::chrono::steady_clock::time_point(
                              std::chrono::nanoseconds(now_ns())) +
                          timeout);
    }

    /**
     * Non-blocking receive: kCancelled when closed and drained,
     * kUnavailable when merely empty.  Injection-free by design: the
     * drain/abandon paths rely on try_recv always making progress no
     * matter what fault plan is armed.
     */
    Result<T> try_recv() {
        std::unique_lock<std::mutex> lock(mutex_);
        if (queue_.empty()) {
            if (closed_) {
                return cancelled_error(
                    "recv on closed, empty channel");
            }
            return unavailable_error("channel empty");
        }
        T value = std::move(queue_.front());
        queue_.pop_front();
        note_recv();
        lock.unlock();
        sim::cv_notify_one(not_full_);
        return value;
    }

    /** Closes the channel; wakes all waiters. Idempotent. */
    void close() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!closed_) {
                closed_ = true;
                metrics::count(metrics::Counter::kChanCloses);
                trace::emit(trace::Event::kChanClose, queue_.size());
            }
        }
        sim::cv_notify_all(not_empty_);
        sim::cv_notify_all(not_full_);
    }

    bool closed() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    size_t size() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return queue_.size();
    }

    /**
     * Closed AND empty — shutdown has fully propagated through this
     * channel; the next recv() fails with kCancelled.  One lock hold,
     * so the conjunction is a consistent snapshot (separate closed() +
     * size() calls could interleave with a drain).  Like every
     * observer below, it takes mutex_: the pipeline report path reads
     * these from the coordinating thread while workers are still
     * touching the channel, and the lock — not a relaxed load — is
     * what makes those cross-thread reads well-defined (pinned by the
     * TelemetryObserversAreLockedUnderTraffic TSan test).
     */
    bool drained() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_ && queue_.empty();
    }

    /** Deepest the queue has ever been (backpressure high-water). */
    size_t depth_high_water() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return depth_high_water_;
    }

    /** Total ns senders and receivers spent blocked on this channel. */
    uint64_t blocked_ns() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return blocked_ns_;
    }

  private:
    bool send_ready() const {
        return closed_ || queue_.size() < capacity_;
    }
    bool recv_ready() const { return closed_ || !queue_.empty(); }

    // The note_* helpers and BlockScope run under mutex_; the members
    // they touch are plain fields, and the global instruments are
    // atomic.

    void note_send() {
        if (queue_.size() > depth_high_water_) {
            depth_high_water_ = queue_.size();
            metrics::gauge_max(metrics::Gauge::kChanDepthHighWater,
                               depth_high_water_);
        }
        metrics::count(metrics::Counter::kChanSends);
        trace::emit(trace::Event::kChanSend, queue_.size());
    }

    void note_recv() {
        metrics::count(metrics::Counter::kChanRecvs);
        trace::emit(trace::Event::kChanRecv, queue_.size());
    }

    /**
     * One blocked interval, begun and ended exactly once.  The scope
     * is constructed (under mutex_) just before waiting and destroyed
     * when the wait path exits, however it exits — a timed wait that
     * expires, a satisfied predicate, or an exception all end the
     * interval and release the level gauge on the same destructor
     * path, so kChanBlockedNow can never leak a phantom waiter.
     */
    class BlockScope {
      public:
        BlockScope(Channel& channel, bool recv)
            : channel_(channel), recv_(recv), start_(now_ns()) {
            metrics::count(recv_
                               ? metrics::Counter::kChanRecvBlocked
                               : metrics::Counter::kChanSendBlocked);
            metrics::gauge_add(metrics::Gauge::kChanBlockedNow);
        }

        ~BlockScope() {
            uint64_t waited_ns = now_ns() - start_;
            channel_.blocked_ns_ += waited_ns;
            metrics::gauge_sub(metrics::Gauge::kChanBlockedNow);
            metrics::observe(metrics::Histogram::kChanBlockedNs,
                             waited_ns);
            trace::emit(trace::Event::kChanBlock, recv_ ? 1 : 0,
                        waited_ns);
        }

        BlockScope(const BlockScope&) = delete;
        BlockScope& operator=(const BlockScope&) = delete;

      private:
        Channel& channel_;
        bool recv_;
        uint64_t start_;
    };

    const size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<T> queue_;
    bool closed_ = false;
    size_t depth_high_water_ = 0;
    uint64_t blocked_ns_ = 0;
};

}  // namespace bitc::conc

#endif  // BITC_CONCURRENCY_CHANNEL_HPP
