/**
 * @file
 * Bounded MPMC channel: the message-passing alternative in the
 * shared-state experiment (C4).  Mirrors the Rust std::sync::mpsc /
 * Go-channel shape the lecture material shows: blocking send/recv,
 * close semantics, errors instead of exceptions.
 */
#ifndef BITC_CONCURRENCY_CHANNEL_HPP
#define BITC_CONCURRENCY_CHANNEL_HPP

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "support/status.hpp"

namespace bitc::conc {

/**
 * Bounded multi-producer multi-consumer channel.
 *
 * send blocks while full; recv blocks while empty.  After close(),
 * sends fail immediately and recvs drain the backlog then fail with
 * kFailedPrecondition — the "iterate until disconnect" idiom.
 */
template <typename T>
class Channel {
  public:
    explicit Channel(size_t capacity) : capacity_(capacity) {}

    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    /** Blocking send. Fails if the channel is (or becomes) closed. */
    Status send(T value) {
        std::unique_lock<std::mutex> lock(mutex_);
        not_full_.wait(lock, [&] {
            return closed_ || queue_.size() < capacity_;
        });
        if (closed_) {
            return failed_precondition_error("send on closed channel");
        }
        queue_.push_back(std::move(value));
        lock.unlock();
        not_empty_.notify_one();
        return Status::ok();
    }

    /** Non-blocking send; false when full or closed. */
    bool try_send(T value) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || queue_.size() >= capacity_) return false;
            queue_.push_back(std::move(value));
        }
        not_empty_.notify_one();
        return true;
    }

    /** Blocking receive. Fails once closed and drained. */
    Result<T> recv() {
        std::unique_lock<std::mutex> lock(mutex_);
        not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
        if (queue_.empty()) {
            return failed_precondition_error(
                "recv on closed, empty channel");
        }
        T value = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return value;
    }

    /** Non-blocking receive. */
    std::optional<T> try_recv() {
        std::optional<T> out;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (queue_.empty()) return std::nullopt;
            out = std::move(queue_.front());
            queue_.pop_front();
        }
        not_full_.notify_one();
        return out;
    }

    /** Closes the channel; wakes all waiters. Idempotent. */
    void close() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    bool closed() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    size_t size() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return queue_.size();
    }

  private:
    const size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<T> queue_;
    bool closed_ = false;
};

}  // namespace bitc::conc

#endif  // BITC_CONCURRENCY_CHANNEL_HPP
