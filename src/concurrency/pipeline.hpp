/**
 * @file
 * Multi-worker CSP packet-pipeline server: the F4 packet stages
 * (validate -> dec-ttl -> checksum -> classify) run as channel-
 * connected stage workers instead of a single-threaded loop.
 *
 * Architecture (docs/pipeline.md has the full protocol):
 *
 *  - Every stage owns a configurable number of workers; every worker
 *    owns one bounded input Channel of packet batches, so a slow stage
 *    exerts backpressure on its upstream through ordinary blocking
 *    sends — no unbounded queues anywhere.
 *  - Packets are sharded onto workers by a hash of their flow id, and
 *    the shard map is a pure function of the flow, so one flow always
 *    crosses one worker per stage and per-flow order is preserved end
 *    to end (the sink verifies this).
 *  - Shutdown is pure close propagation: the source closes the first
 *    stage's channels when input is exhausted; the last worker out of
 *    stage S closes stage S+1's channels; the sink drains until its
 *    channel reports closed-and-empty.  No sentinel packets.
 *  - Injected kChannelOp faults drain gracefully: sends retry a
 *    bounded number of times, a worker whose input is fault-poisoned
 *    closes it and accounts the stranded backlog, and the report's
 *    conservation invariant (generated == delivered + dropped +
 *    fault_dropped + shed) still holds.
 *  - Stage workers are *supervised* (supervisor.hpp): a worker that
 *    dies — injected worker-crash fault, fault-exhaustion poison-exit
 *    — is restarted with capped exponential backoff while its bounded
 *    input absorbs the backpressure; a worker that keeps dying trips
 *    its per-shard circuit breaker, and upstream reroutes that
 *    shard's batches to the drop-with-accounting path until the
 *    half-open probe succeeds.
 *  - Deadline propagation (docs/supervision.md): the source stamps
 *    every batch with an absolute deadline (deadline_ms > 0), stage
 *    hand-offs honor it via try_send_until, and expired batches are
 *    shed at stage entry — graceful load-shedding under fault storms
 *    instead of unbounded latency.
 *
 * Each stage runs either the legacy C++ implementation on wire bytes
 * or the migrated BitC implementation (one private VM per worker) —
 * the same two worlds the migration experiment measures, now under
 * concurrent load.
 */
#ifndef BITC_CONCURRENCY_PIPELINE_HPP
#define BITC_CONCURRENCY_PIPELINE_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "concurrency/channel.hpp"
#include "concurrency/supervisor.hpp"
#include "interop/packet_stages.hpp"
#include "support/options.hpp"
#include "support/status.hpp"
#include "vm/pipeline.hpp"

namespace bitc::conc {

/** Wire buffer size per packet (the IPv4-style header is 20 bytes). */
inline constexpr size_t kPipeWireBytes = 24;

/**
 * Bucket value tagging a packet the validate stage rejected when the
 * pipeline runs with forward_drops: instead of vanishing into the
 * dropped ledger, the packet rides to the sink carrying this tag (later
 * stages pass it through untouched) so an external consumer — the
 * network front-end — can answer its originator with a drop frame.
 */
inline constexpr int64_t kPipeDropBucket = -2;

/** One packet in flight: header bytes plus routing/ordering metadata. */
struct PipePacket {
    std::array<uint8_t, kPipeWireBytes> wire{};
    uint32_t flow = 0;      ///< Flow id (derived from the source addr).
    uint32_t payload = 0;   ///< Offset of this packet's payload window.
    uint64_t flow_seq = 0;  ///< Per-flow sequence number (1-based).
    int64_t bucket = -1;    ///< Route bucket set by the classify stage.
    uint64_t ingress_ns = 0;///< Entry stamp for end-to-end latency; 0 = unstamped.
};

/**
 * Stage hand-offs move batches, amortizing the channel hop.  A batch
 * carries the end-to-end deadline of its packets (the earliest stamp
 * of any packet folded in): 0 means "no deadline" and restores the
 * block-forever behaviour; otherwise every hand-off send bounds its
 * wait by it and every stage sheds the batch on expiry at entry.
 */
struct PipeBatch {
    std::vector<PipePacket> packets;
    uint64_t deadline_ns = 0;  ///< Absolute steady-clock ns; 0 = none.
};

/**
 * Capacity-preserving recycler for batch packet vectors.  A batch's
 * vector is allocated once, rides the channels from producer to
 * terminal consumer, and comes back here instead of to the heap; the
 * next producer re-acquires it with its capacity intact, so steady-
 * state batch traffic allocates nothing.  Thread-safe; both ends of
 * the pipeline (the network front-end and the stage workers) share
 * the one process-wide pool.
 */
std::vector<PipePacket> acquire_packet_vec(size_t reserve_hint);
void recycle_packet_vec(std::vector<PipePacket>&& vec);

/** Knobs for one pipeline instance. */
struct PipelineConfig {
    /** Workers per stage (zero entries are clamped to one). */
    std::array<size_t, interop::kStageCount> workers{1, 1, 1, 1};
    size_t queue_capacity = 64;  ///< Bounded input depth, in batches.
    size_t batch_packets = 32;   ///< Packets per hand-off batch.

    /**
     * Payload bytes checksummed per packet by the checksum stage —
     * CPU-bound work standing in for the payload handling a real
     * forwarding path does.  Payloads never migrate: both stage
     * implementations run this part natively.
     */
    size_t payload_bytes = 0;

    /**
     * Simulated blocking route-table lookup in the classify stage, in
     * microseconds per packet (0 = pure compute).  Models the slow
     * lookups (ARP miss, userspace upcall) a kernel path overlaps by
     * keeping many packets in flight; extra classify workers hide
     * this latency even on a single core.
     */
    uint32_t lookup_latency_us = 0;

    bool migrated = false;  ///< true = BitC stage impls (one VM/worker).
    uint64_t seed = 1;      ///< Packet-stream seed (reproducible runs).
    vm::VmConfig vm;        ///< VM configuration for migrated workers.

    /** Restart/backoff/breaker policy for every stage worker. */
    SupervisorConfig supervision;

    /**
     * End-to-end deadline budget per batch, stamped by the source at
     * generation time (0 = no deadlines, sends block indefinitely).
     * Expired batches are shed with accounting instead of delivered.
     */
    uint64_t deadline_ms = 0;

    /**
     * When true, validate-stage rejects are tagged kPipeDropBucket and
     * forwarded to the sink instead of being counted into the dropped
     * ledger — the streaming mode the network server runs in, where
     * every frame's originator must hear an answer.  The in-process
     * run() keeps this off and preserves the historical accounting.
     */
    bool forward_drops = false;

    /**
     * Optional loss callback: invoked once per packet the engine
     * loses — deadline-shed or fault-dropped — with that packet's
     * flow id, on whatever engine thread took the loss (no engine
     * locks held).  An external producer that tracks per-flow debts
     * (the network front-end owes every submitted packet an answer)
     * uses it to settle flows whose answer will never reach the sink.
     * Leave empty for zero overhead; the callback must not call back
     * into the engine.
     */
    std::function<void(uint32_t flow)> on_loss;

    PipelineConfig() {
        vm.mode = vm::ValueMode::kUnboxed;
        vm.heap = vm::HeapPolicy::kRegion;
        vm.heap_words = 1u << 16;
        vm.stack_slots = 1u << 10;
    }

    size_t total_workers() const {
        size_t n = 0;
        for (size_t w : workers) n += w > 0 ? w : 1;
        return n;
    }
};

/** Per-stage telemetry, aggregated over the stage's workers. */
struct PipelineStageReport {
    size_t workers = 0;
    uint64_t packets = 0;        ///< Packets entering the stage.
    uint64_t batches = 0;        ///< Batches its workers consumed.
    uint64_t blocked_ns = 0;     ///< Send+recv blocking on its inputs.
    size_t depth_high_water = 0; ///< Deepest input queue, in batches.
    uint64_t fault_retries = 0;  ///< Injected channel faults absorbed.
    uint64_t crashes = 0;        ///< Worker bodies that died.
    uint64_t restarts = 0;       ///< Supervised restarts (incl. probes).
    uint64_t breaker_opens = 0;  ///< Breaker trips across its workers.
};

/** What one run produced; checksums are worker-count invariant. */
struct PipelineReport {
    uint64_t generated = 0;      ///< Packets injected by the source.
    uint64_t delivered = 0;      ///< Packets that reached the sink.
    uint64_t dropped = 0;        ///< Dropped by the validate stage.
    uint64_t fault_dropped = 0;  ///< Lost to injected faults/breakers.
    uint64_t shed = 0;           ///< Shed because their deadline passed.

    uint64_t worker_crashes = 0;   ///< Supervised worker deaths.
    uint64_t worker_restarts = 0;  ///< Restarts the supervisors issued.
    uint64_t breaker_opens = 0;    ///< Circuit-breaker trips.

    uint64_t route_checksum = 0;       ///< sum(bucket+1) of delivered.
    uint64_t header_checksum_sum = 0;  ///< sum of final checksum fields.
    uint64_t payload_checksum = 0;     ///< payload work witness.
    bool flows_in_order = true;  ///< Sink saw per-flow seq monotone.

    double elapsed_ms = 0;
    double packets_per_sec = 0;

    std::array<PipelineStageReport, interop::kStageCount> stages{};
    size_t sink_depth_high_water = 0;
    uint64_t sink_blocked_ns = 0;

    /** Every generated packet is accounted for exactly once. */
    bool conserved() const {
        return generated == delivered + dropped + fault_dropped + shed;
    }

    /** Human-readable multi-line table (the bitcc driver prints it). */
    std::string to_string() const;
};

/**
 * The pipeline's worker fleet as a long-lived streaming engine.
 *
 * PacketPipeline::run() drives a fixed generated stream through the
 * stages; the engine is the same machinery with the source and sink
 * handed to the caller, so an external producer — the network
 * front-end in net/server.hpp — can feed batches in as they arrive
 * and drain results from the sink channel at its own pace:
 *
 *   auto engine = PipelineEngine::create(config).value();
 *   engine->start();                       // spawn stage workers
 *   size_t s = engine->shard_for(flow);
 *   engine->try_submit(s, std::move(b));   // kUnavailable = backpressure
 *   ... engine->sink_channel().recv() ...  // results, flow-ordered
 *   engine->close_input();                 // end of input
 *   engine->finish();                      // join the fleet
 *
 * Lifecycle is one-shot: start() once, close_input() once, finish()
 * once (finish is idempotent and the destructor runs it).  Submitting
 * after close_input() fails with kCancelled.  The conservation ledger
 * splits across the boundary: the caller counts what it submits and
 * what it drains from the sink; dropped()/fault_dropped()/shed() are
 * what the stages consumed in between, so
 *
 *   submitted == drained + dropped + fault_dropped + shed
 *
 * holds after finish() (with forward_drops, dropped() stays zero and
 * rejects arrive at the sink tagged kPipeDropBucket).
 */
class PipelineEngine {
  public:
    /** Builds the migrated program (config.migrated) and payload arena. */
    static Result<std::unique_ptr<PipelineEngine>> create(
        PipelineConfig config);
    ~PipelineEngine();
    PipelineEngine(const PipelineEngine&) = delete;
    PipelineEngine& operator=(const PipelineEngine&) = delete;

    /** Spawns the stage workers.  Call exactly once. */
    void start();

    /** Number of first-stage shards batches can be submitted to. */
    size_t shard_count() const;
    /** The first-stage shard owning @p flow (pure flow hash). */
    size_t shard_for(uint32_t flow) const;

    /** Blocking submit; respects the batch deadline like a stage hop. */
    Status submit(size_t shard, PipeBatch&& batch);
    /**
     * Non-blocking submit: kUnavailable when the shard's bounded input
     * is full (the caller's backpressure signal — stop reading the
     * socket), kCancelled after close_input().  The batch is returned
     * untouched inside the failure path only in the sense that nothing
     * was enqueued; the caller keeps its own copy to retry.
     */
    Status try_submit(size_t shard, const PipeBatch& batch);
    /**
     * Copy-free try_submit: moves @p batch into the shard's input on
     * success; on failure (kUnavailable backpressure, kCancelled
     * close) the batch is left intact for the caller to park and
     * retry — no packet vector is ever copied or lost.
     */
    Status try_submit(size_t shard, PipeBatch&& batch);

    /**
     * True while @p shard's first-stage breaker is open: its worker
     * keeps crashing and batches would go straight to the drop path.
     * Callers that can answer the originator (the server) check this
     * and reject at the edge instead.
     */
    bool shard_sick(size_t shard) const;

    /** Closes the first-stage inputs; close propagates to the sink. */
    void close_input();

    /** Terminal output: recv until it reports kCancelled. */
    Channel<PipeBatch>& sink_channel();

    // Live ledger reads (relaxed; exact after finish()).
    uint64_t dropped() const;
    uint64_t fault_dropped() const;
    uint64_t shed() const;

    /** Joins the worker fleet.  Idempotent; destructor calls it. */
    void finish();

    /**
     * Fills the per-stage/supervision/sink telemetry of @p report
     * (stages, crash/restart/breaker totals, depth high-waters).
     * Meaningful after finish().
     */
    void fill_stage_reports(PipelineReport& report) const;

    const PipelineConfig& config() const;

  private:
    friend class PacketPipeline;
    struct Impl;
    explicit PipelineEngine(std::unique_ptr<Impl> impl);
    std::unique_ptr<Impl> impl_;
};

/**
 * A runnable pipeline server.  create() builds the migrated-stage
 * program once; run() spawns the worker fleet, pushes @p packet_count
 * generated packets through it, and joins everything before
 * returning, so sequential runs on one instance are independent.
 * Internally each run is one PipelineEngine lifecycle with an
 * in-process source thread and verifying sink.
 */
class PacketPipeline {
  public:
    static Result<std::unique_ptr<PacketPipeline>> create(
        PipelineConfig config);

    Result<PipelineReport> run(size_t packet_count);

    const PipelineConfig& config() const { return config_; }

  private:
    PacketPipeline(PipelineConfig config,
                   std::unique_ptr<vm::BuiltProgram> built);

    PipelineConfig config_;
    std::unique_ptr<vm::BuiltProgram> built_;  ///< migrated stages only
    std::vector<uint8_t> payload_;  ///< shared read-only payload window
};

/**
 * Converts the typed support-layer spec into this layer's config.
 * The options struct is plain data; this is where its fields meet
 * SupervisorConfig and the VM knobs.  Packet count travels separately
 * (options::PipelineSpec::packets) because it parameterises a driver
 * run, not the engine.
 */
PipelineConfig config_from_spec(const options::PipelineSpec& spec);

/**
 * Parsed --pipeline spec: engine config plus the driver packet count.
 * The grammar itself lives in options::PipelineSpec::parse
 * ("workers=N|a:b:c:d,queue=N,batch=N,packets=N,impl=legacy|bitc,
 * seed=N,payload=BYTES,lookup-us=US,restarts=N,window=MS,backoff=MS,
 * deadline=MS"); this is the thin adapter CLI-facing callers use.
 */
struct PipelineSpec {
    PipelineConfig config;
    size_t packets = 10000;
};
Result<PipelineSpec> parse_pipeline_spec(const std::string& spec);

}  // namespace bitc::conc

#endif  // BITC_CONCURRENCY_PIPELINE_HPP
