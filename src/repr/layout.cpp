#include "repr/layout.hpp"

#include <algorithm>
#include <unordered_set>

#include "support/string_util.hpp"

namespace bitc::repr {

RecordLayout::RecordLayout(std::string name, BitOrder order,
                           std::vector<FieldLayout> fields,
                           uint32_t byte_size, uint32_t alignment_bytes)
    : name_(std::move(name)),
      bit_order_(order),
      fields_(std::move(fields)),
      byte_size_(byte_size),
      alignment_(alignment_bytes)
{
}

Result<FieldLayout>
RecordLayout::field(const std::string& name) const
{
    for (const FieldLayout& f : fields_) {
        if (f.name == name) return f;
    }
    return not_found_error(
        str_format("no field '%s' in record '%s'", name.c_str(),
                   name_.c_str()));
}

bool
RecordLayout::has_field(const std::string& name) const
{
    return std::any_of(fields_.begin(), fields_.end(),
                       [&](const FieldLayout& f) { return f.name == name; });
}

uint64_t
RecordLayout::padding_bits() const
{
    // Count covered bits with a bitmap; records are small.
    std::vector<bool> covered(byte_size_ * 8ull, false);
    for (const FieldLayout& f : fields_) {
        for (uint64_t b = f.bit_offset; b < f.bit_offset + f.bit_width;
             ++b) {
            covered[b] = true;
        }
    }
    uint64_t pad = 0;
    for (bool c : covered) {
        if (!c) ++pad;
    }
    return pad;
}

std::string
RecordLayout::describe() const
{
    std::string out = str_format("record %s (%u bytes, align %u)\n",
                                 name_.c_str(), byte_size_, alignment_);
    for (const FieldLayout& f : fields_) {
        out += str_format("  %-16s : %-7s @ bit %llu width %u\n",
                          f.name.c_str(), f.type.to_string().c_str(),
                          static_cast<unsigned long long>(f.bit_offset),
                          f.bit_width);
    }
    return out;
}

namespace {

/** Byte alignment C would give the scalar (capped at 8). */
uint32_t
natural_alignment_bytes(ScalarType type)
{
    uint32_t bytes = (type.bits() + 7) / 8;
    // Round up to a power of two, cap at 8.
    uint32_t align = 1;
    while (align < bytes) align <<= 1;
    return std::min(align, 8u);
}

uint64_t
align_up(uint64_t value, uint64_t alignment)
{
    return (value + alignment - 1) / alignment * alignment;
}

Status
check_overlap(const std::vector<FieldLayout>& fields)
{
    std::vector<FieldLayout> sorted = fields;
    std::sort(sorted.begin(), sorted.end(),
              [](const FieldLayout& a, const FieldLayout& b) {
                  return a.bit_offset < b.bit_offset;
              });
    for (size_t i = 1; i < sorted.size(); ++i) {
        const FieldLayout& prev = sorted[i - 1];
        const FieldLayout& cur = sorted[i];
        if (prev.bit_offset + prev.bit_width > cur.bit_offset) {
            return invalid_argument_error(
                str_format("fields '%s' and '%s' overlap",
                           prev.name.c_str(), cur.name.c_str()));
        }
    }
    return Status::ok();
}

}  // namespace

Result<RecordLayout>
compute_layout(const RecordSpec& spec)
{
    std::unordered_set<std::string> names;
    for (const FieldSpec& f : spec.fields) {
        BITC_RETURN_IF_ERROR(f.type.validate());
        if (!names.insert(f.name).second) {
            return already_exists_error(
                str_format("duplicate field '%s' in record '%s'",
                           f.name.c_str(), spec.name.c_str()));
        }
        if (spec.packing == Packing::kExplicit && !f.bit_offset) {
            return invalid_argument_error(
                str_format("field '%s' needs a bit offset under "
                           "explicit packing", f.name.c_str()));
        }
    }

    std::vector<FieldLayout> fields;
    fields.reserve(spec.fields.size());
    uint64_t cursor = 0;   // next free bit
    uint64_t end_bit = 0;  // highest bit used so far
    uint32_t max_align = 1;

    for (const FieldSpec& f : spec.fields) {
        FieldLayout out;
        out.name = f.name;
        out.type = f.type;
        out.bit_width = f.type.bits();
        switch (spec.packing) {
          case Packing::kNatural: {
            uint32_t align = natural_alignment_bytes(f.type);
            max_align = std::max(max_align, align);
            // Natural mode widens sub-byte scalars to whole bytes and
            // aligns like C would; the padding cost is what the packed
            // mode exists to avoid.
            uint32_t width_bytes = (f.type.bits() + 7) / 8;
            cursor = align_up(cursor, align * 8ull);
            out.bit_offset = cursor;
            cursor += width_bytes * 8ull;
            break;
          }
          case Packing::kPacked:
            out.bit_offset = cursor;
            cursor += f.type.bits();
            break;
          case Packing::kExplicit:
            out.bit_offset = *f.bit_offset;
            break;
        }
        end_bit = std::max(end_bit, out.bit_offset + out.bit_width);
        fields.push_back(out);
    }

    if (!spec.allow_overlap) {
        BITC_RETURN_IF_ERROR(check_overlap(fields));
    }

    uint32_t byte_size = static_cast<uint32_t>((end_bit + 7) / 8);
    if (spec.packing == Packing::kNatural) {
        byte_size = static_cast<uint32_t>(
            align_up(byte_size, max_align));
    }
    if (spec.pinned_byte_size) {
        if (byte_size > *spec.pinned_byte_size) {
            return invalid_argument_error(str_format(
                "record '%s' needs %u bytes but is pinned to %u",
                spec.name.c_str(), byte_size, *spec.pinned_byte_size));
        }
        byte_size = *spec.pinned_byte_size;
    }

    return RecordLayout(spec.name, spec.bit_order, std::move(fields),
                        byte_size,
                        spec.packing == Packing::kNatural ? max_align : 1);
}

}  // namespace bitc::repr
