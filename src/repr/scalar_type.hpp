/**
 * @file
 * Bit-precise scalar types.
 *
 * Challenge C3 ("control over data representation") demands types whose
 * machine representation is exact and programmer-chosen: a 3-bit flags
 * field, a 13-bit length, a signed 24-bit sample.  ScalarType is that
 * vocabulary; the layout engine and codecs consume it, and the language
 * front end surfaces it as (bit uint 13)-style type expressions.
 */
#ifndef BITC_REPR_SCALAR_TYPE_HPP
#define BITC_REPR_SCALAR_TYPE_HPP

#include <cstdint>
#include <string>

#include "support/status.hpp"

namespace bitc::repr {

/** Interpretation of a scalar's bit pattern. */
enum class ScalarClass : uint8_t {
    kUnsigned,  ///< Zero-extended integer, any width 1..64.
    kSigned,    ///< Two's-complement integer, any width 2..64.
    kFloat,     ///< IEEE-754 binary32 or binary64 only.
    kBool,      ///< One bit, 0 or 1.
};

/**
 * A scalar with exact bit width.  Value type; compares structurally.
 */
class ScalarType {
  public:
    /** Unsigned integer of @p bits (1..64). */
    static ScalarType uint_type(uint32_t bits) {
        return ScalarType(ScalarClass::kUnsigned, bits);
    }
    /** Signed two's-complement integer of @p bits (2..64). */
    static ScalarType int_type(uint32_t bits) {
        return ScalarType(ScalarClass::kSigned, bits);
    }
    static ScalarType f32() { return ScalarType(ScalarClass::kFloat, 32); }
    static ScalarType f64() { return ScalarType(ScalarClass::kFloat, 64); }
    static ScalarType boolean() { return ScalarType(ScalarClass::kBool, 1); }

    ScalarClass scalar_class() const { return class_; }
    uint32_t bits() const { return bits_; }

    bool is_integer() const {
        return class_ == ScalarClass::kUnsigned ||
               class_ == ScalarClass::kSigned;
    }
    bool is_signed() const { return class_ == ScalarClass::kSigned; }
    bool is_float() const { return class_ == ScalarClass::kFloat; }

    /** Checks width constraints for the class. */
    Status validate() const;

    /** Largest representable value, as raw bits (integers only). */
    uint64_t max_raw() const;
    /** Smallest representable signed value (signed only). */
    int64_t min_signed() const;
    int64_t max_signed() const;

    /**
     * True if @p value (interpreted per the class) is representable.
     * For unsigned/bool the argument is the zero-extended value; for
     * signed it is the sign-extended value reinterpreted as uint64.
     */
    bool fits(uint64_t value) const;

    /**
     * Narrows @p value to this type, failing (kOutOfRange) on overflow
     * instead of silently truncating — the "safe conversion function"
     * discipline the paper's security discussion calls for.
     */
    Result<uint64_t> checked_convert(uint64_t value) const;

    /** Truncates/sign-extends @p value to the type's width (C-style). */
    uint64_t wrap(uint64_t value) const;

    /** "uint13", "int24", "f32", "bool" rendering. */
    std::string to_string() const;

    bool operator==(const ScalarType&) const = default;

  private:
    ScalarType(ScalarClass cls, uint32_t bits) : class_(cls), bits_(bits) {}

    ScalarClass class_;
    uint32_t bits_;
};

/** Sign-extends the low @p bits of @p value to 64 bits. */
int64_t sign_extend(uint64_t value, uint32_t bits);

/** Mask with the low @p bits set (bits in 1..64). */
uint64_t low_mask(uint32_t bits);

}  // namespace bitc::repr

#endif  // BITC_REPR_SCALAR_TYPE_HPP
