#include "repr/codec.hpp"

#include "support/string_util.hpp"

namespace bitc::repr {

Status
RecordCodec::check_buffer(size_t bytes) const
{
    if (bytes < layout_.byte_size()) {
        return out_of_range_error(
            str_format("buffer of %zu bytes shorter than record '%s' "
                       "(%u bytes)",
                       bytes, layout_.name().c_str(),
                       layout_.byte_size()));
    }
    return Status::ok();
}

Result<uint64_t>
RecordCodec::read(std::span<const uint8_t> buffer,
                  const std::string& name) const
{
    BITC_RETURN_IF_ERROR(check_buffer(buffer.size()));
    BITC_ASSIGN_OR_RETURN(FieldLayout field, layout_.field(name));
    return read_field(buffer, field);
}

Result<int64_t>
RecordCodec::read_signed(std::span<const uint8_t> buffer,
                         const std::string& name) const
{
    BITC_RETURN_IF_ERROR(check_buffer(buffer.size()));
    BITC_ASSIGN_OR_RETURN(FieldLayout field, layout_.field(name));
    uint64_t raw = read_field(buffer, field);
    if (field.type.is_signed()) {
        return sign_extend(raw, field.bit_width);
    }
    return static_cast<int64_t>(raw);
}

Status
RecordCodec::write(std::span<uint8_t> buffer, const std::string& name,
                   uint64_t value) const
{
    BITC_RETURN_IF_ERROR(check_buffer(buffer.size()));
    BITC_ASSIGN_OR_RETURN(FieldLayout field, layout_.field(name));
    BITC_ASSIGN_OR_RETURN(uint64_t raw, field.type.checked_convert(value));
    write_field(buffer, field, raw);
    return Status::ok();
}

Status
RecordCodec::write_signed(std::span<uint8_t> buffer,
                          const std::string& name, int64_t value) const
{
    BITC_RETURN_IF_ERROR(check_buffer(buffer.size()));
    BITC_ASSIGN_OR_RETURN(FieldLayout field, layout_.field(name));
    if (field.type.is_signed()) {
        if (value < field.type.min_signed() ||
            value > field.type.max_signed()) {
            return out_of_range_error(
                str_format("value %lld does not fit %s",
                           static_cast<long long>(value),
                           field.type.to_string().c_str()));
        }
        write_field(buffer, field,
                    static_cast<uint64_t>(value) &
                        low_mask(field.bit_width));
        return Status::ok();
    }
    if (value < 0) {
        return out_of_range_error("negative value into unsigned field");
    }
    BITC_ASSIGN_OR_RETURN(
        uint64_t raw,
        field.type.checked_convert(static_cast<uint64_t>(value)));
    write_field(buffer, field, raw);
    return Status::ok();
}

RecordSpec
ipv4_header_spec()
{
    RecordSpec spec;
    spec.name = "ipv4_header";
    spec.packing = Packing::kPacked;
    spec.bit_order = BitOrder::kMsbFirst;
    spec.pinned_byte_size = 20;
    spec.fields = {
        {"version", ScalarType::uint_type(4)},
        {"ihl", ScalarType::uint_type(4)},
        {"dscp", ScalarType::uint_type(6)},
        {"ecn", ScalarType::uint_type(2)},
        {"total_length", ScalarType::uint_type(16)},
        {"identification", ScalarType::uint_type(16)},
        {"flags", ScalarType::uint_type(3)},
        {"fragment_offset", ScalarType::uint_type(13)},
        {"ttl", ScalarType::uint_type(8)},
        {"protocol", ScalarType::uint_type(8)},
        {"header_checksum", ScalarType::uint_type(16)},
        {"src_addr", ScalarType::uint_type(32)},
        {"dst_addr", ScalarType::uint_type(32)},
    };
    return spec;
}

RecordSpec
page_table_entry_spec()
{
    RecordSpec spec;
    spec.name = "page_table_entry";
    spec.packing = Packing::kExplicit;
    spec.bit_order = BitOrder::kLsbFirst;
    spec.pinned_byte_size = 8;
    spec.fields = {
        {"present", ScalarType::boolean(), 0},
        {"writable", ScalarType::boolean(), 1},
        {"user", ScalarType::boolean(), 2},
        {"write_through", ScalarType::boolean(), 3},
        {"cache_disable", ScalarType::boolean(), 4},
        {"accessed", ScalarType::boolean(), 5},
        {"dirty", ScalarType::boolean(), 6},
        {"page_size", ScalarType::boolean(), 7},
        {"global", ScalarType::boolean(), 8},
        {"frame", ScalarType::uint_type(40), 12},
        {"pkey", ScalarType::uint_type(4), 59},
        {"no_execute", ScalarType::boolean(), 63},
    };
    return spec;
}

}  // namespace bitc::repr
