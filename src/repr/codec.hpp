/**
 * @file
 * Record codec: typed, bounds-checked field access over raw byte
 * buffers, driven by a RecordLayout.
 *
 * This is the LangSec-flavoured half of C3: a parser whose structure is
 * *derived from the declared representation* instead of hand-written
 * shifts and masks, eliminating the offset-arithmetic bug class.
 */
#ifndef BITC_REPR_CODEC_HPP
#define BITC_REPR_CODEC_HPP

#include <cstdint>
#include <span>
#include <string>

#include "repr/layout.hpp"
#include "support/status.hpp"

namespace bitc::repr {

/**
 * Reads and writes fields of one record type within byte buffers.
 * Stateless and cheap to copy; holds the layout by value.
 */
class RecordCodec {
  public:
    explicit RecordCodec(RecordLayout layout) : layout_(std::move(layout)) {}

    const RecordLayout& layout() const { return layout_; }

    /**
     * Reads field @p name from @p buffer (which must hold at least one
     * record starting at byte 0).  Integers are returned zero-extended;
     * use read_signed for sign-extension.
     */
    Result<uint64_t> read(std::span<const uint8_t> buffer,
                          const std::string& name) const;

    /** Reads a signed field, sign-extended to 64 bits. */
    Result<int64_t> read_signed(std::span<const uint8_t> buffer,
                                const std::string& name) const;

    /**
     * Writes field @p name.  Fails with kOutOfRange if @p value does
     * not fit the field's declared width (no silent truncation).
     */
    Status write(std::span<uint8_t> buffer, const std::string& name,
                 uint64_t value) const;

    /** Writes a signed value with range checking. */
    Status write_signed(std::span<uint8_t> buffer, const std::string& name,
                        int64_t value) const;

    /** Reads by precomputed FieldLayout: the hot path for parsers. */
    uint64_t read_field(std::span<const uint8_t> buffer,
                        const FieldLayout& field) const {
        return read_bits(buffer.data(), field.bit_offset, field.bit_width,
                         layout_.bit_order());
    }

    /** Writes by precomputed FieldLayout without range checks. */
    void write_field(std::span<uint8_t> buffer, const FieldLayout& field,
                     uint64_t value) const {
        write_bits(buffer.data(), field.bit_offset, field.bit_width,
                   value & low_mask(field.bit_width),
                   layout_.bit_order());
    }

  private:
    Status check_buffer(size_t bytes) const;

    RecordLayout layout_;
};

/** The IPv4-style header used throughout docs, tests and benches. */
RecordSpec ipv4_header_spec();

/** An x86-64-style page-table entry (explicit bit placement). */
RecordSpec page_table_entry_spec();

}  // namespace bitc::repr

#endif  // BITC_REPR_CODEC_HPP
