#include "repr/boxed_value.hpp"

namespace bitc::repr {

BoxedI64Array::BoxedI64Array(size_t size, bool scatter, Rng& rng)
{
    pool_.reserve(size);
    slots_.assign(size, nullptr);

    if (!scatter) {
        for (size_t i = 0; i < size; ++i) {
            pool_.push_back(std::make_unique<I64Box>(I64Box{1, 0}));
            slots_[i] = pool_.back().get();
        }
        return;
    }

    // Allocate boxes in a random permutation of the access order, so
    // slot i's box is (almost surely) far from slot i+1's box.
    std::vector<size_t> order(size);
    for (size_t i = 0; i < size; ++i) order[i] = i;
    for (size_t i = size; i > 1; --i) {
        size_t j = rng.next_below(i);
        std::swap(order[i - 1], order[j]);
    }
    for (size_t i = 0; i < size; ++i) {
        pool_.push_back(std::make_unique<I64Box>(I64Box{1, 0}));
        slots_[order[i]] = pool_.back().get();
    }
}

}  // namespace bitc::repr
