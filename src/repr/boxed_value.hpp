/**
 * @file
 * Boxed vs unboxed sequence representations — the apparatus for
 * fallacy F2 ("boxed representation can be optimised away").
 *
 * UnboxedI64Array stores elements inline, contiguously, the way C (and
 * BitC) lay out arrays.  BoxedI64Array stores a pointer per element to
 * a heap-allocated box carrying a tag word, the uniform representation
 * ML-family runtimes use for polymorphic data.  The optional scatter
 * mode randomises box allocation order relative to access order,
 * modelling the heap entropy a long-running program accumulates.
 */
#ifndef BITC_REPR_BOXED_VALUE_HPP
#define BITC_REPR_BOXED_VALUE_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/rng.hpp"

namespace bitc::repr {

/** A heap box: tag word + payload, 16 bytes, as in typical runtimes. */
struct I64Box {
    uint64_t tag;
    int64_t value;
};

/** Contiguous unboxed storage (the representation systems code wants). */
class UnboxedI64Array {
  public:
    explicit UnboxedI64Array(size_t size) : data_(size, 0) {}

    size_t size() const { return data_.size(); }
    int64_t get(size_t i) const { return data_[i]; }
    void set(size_t i, int64_t v) { data_[i] = v; }

    /** Raw storage, for memcpy-style interop (F4). */
    const int64_t* data() const { return data_.data(); }
    int64_t* data() { return data_.data(); }

    /** Bytes of storage per element. */
    static constexpr size_t bytes_per_element() { return sizeof(int64_t); }

  private:
    std::vector<int64_t> data_;
};

/** Pointer-per-element boxed storage (the uniform ML representation). */
class BoxedI64Array {
  public:
    /**
     * @param size    Element count.
     * @param scatter When true, boxes are allocated in random order so
     *                that logically-adjacent elements are not heap-
     *                adjacent (aged-heap locality).
     * @param rng     Randomness for scatter mode.
     */
    BoxedI64Array(size_t size, bool scatter, Rng& rng);

    size_t size() const { return slots_.size(); }
    int64_t get(size_t i) const { return slots_[i]->value; }
    void set(size_t i, int64_t v) { slots_[i]->value = v; }

    /** Pointer + box bytes per element. */
    static constexpr size_t bytes_per_element() {
        return sizeof(I64Box*) + sizeof(I64Box);
    }

  private:
    // The pool owns the boxes; slots_ holds the access-order pointers.
    std::vector<std::unique_ptr<I64Box>> pool_;
    std::vector<I64Box*> slots_;
};

}  // namespace bitc::repr

#endif  // BITC_REPR_BOXED_VALUE_HPP
