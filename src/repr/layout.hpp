/**
 * @file
 * Struct layout engine: computes exact bit placement for records
 * described with bit-precise field specs under three packing regimes.
 *
 * This is the C3 artefact: the programmer states the representation
 * ("a 4-bit version, then a 4-bit IHL, then ...") and the engine both
 * computes it and *checks* it (overlaps, width violations, size pins),
 * turning representation intent into a machine-checked contract —
 * exactly what Shapiro argues C structs-with-macros cannot give and
 * HM-boxed records refuse to express.
 */
#ifndef BITC_REPR_LAYOUT_HPP
#define BITC_REPR_LAYOUT_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "repr/bitfield.hpp"
#include "repr/scalar_type.hpp"
#include "support/status.hpp"

namespace bitc::repr {

/** How fields are placed within a record. */
enum class Packing : uint8_t {
    kNatural,  ///< C-like: byte-aligned to min(size, 8) with padding.
    kPacked,   ///< Bit-contiguous: each field at the next free bit.
    kExplicit, ///< Every field carries its own bit offset.
};

/** One field in a record spec. */
struct FieldSpec {
    std::string name;
    ScalarType type = ScalarType::uint_type(32);
    /** kExplicit packing: absolute bit offset; ignored otherwise. */
    std::optional<uint64_t> bit_offset;

    FieldSpec(std::string n, ScalarType t)
        : name(std::move(n)), type(t) {}
    FieldSpec(std::string n, ScalarType t, uint64_t offset)
        : name(std::move(n)), type(t), bit_offset(offset) {}
};

/** A record type description, prior to layout. */
struct RecordSpec {
    std::string name;
    Packing packing = Packing::kNatural;
    BitOrder bit_order = BitOrder::kLsbFirst;
    /** Fields may overlap in kExplicit packing (unions/views). */
    bool allow_overlap = false;
    /** If set, the layout must occupy exactly this many bytes. */
    std::optional<uint32_t> pinned_byte_size;
    std::vector<FieldSpec> fields;
};

/** A field with its placement decided. */
struct FieldLayout {
    std::string name;
    ScalarType type = ScalarType::uint_type(32);
    uint64_t bit_offset = 0;
    uint32_t bit_width = 0;
};

/** A fully laid-out record. */
class RecordLayout {
  public:
    RecordLayout(std::string name, BitOrder order,
                 std::vector<FieldLayout> fields, uint32_t byte_size,
                 uint32_t alignment_bytes);

    const std::string& name() const { return name_; }
    BitOrder bit_order() const { return bit_order_; }
    uint32_t byte_size() const { return byte_size_; }
    uint32_t alignment_bytes() const { return alignment_; }
    const std::vector<FieldLayout>& fields() const { return fields_; }

    /** Field lookup by name. */
    Result<FieldLayout> field(const std::string& name) const;
    bool has_field(const std::string& name) const;

    /** Bits of padding (bits covered by no field). */
    uint64_t padding_bits() const;

    /** One line per field: "version : uint4 @ bit 0". */
    std::string describe() const;

  private:
    std::string name_;
    BitOrder bit_order_;
    std::vector<FieldLayout> fields_;
    uint32_t byte_size_;
    uint32_t alignment_;
};

/**
 * Computes a RecordLayout from a RecordSpec, validating:
 *  - every scalar type is well-formed;
 *  - field names are unique;
 *  - explicit placements do not overlap (unless allow_overlap);
 *  - the result fits a pinned size, when pinned.
 */
Result<RecordLayout> compute_layout(const RecordSpec& spec);

}  // namespace bitc::repr

#endif  // BITC_REPR_LAYOUT_HPP
