#include "repr/scalar_type.hpp"

#include <cassert>

#include "support/string_util.hpp"

namespace bitc::repr {

uint64_t
low_mask(uint32_t bits)
{
    assert(bits >= 1 && bits <= 64);
    return bits == 64 ? ~0ull : (1ull << bits) - 1;
}

int64_t
sign_extend(uint64_t value, uint32_t bits)
{
    assert(bits >= 1 && bits <= 64);
    if (bits == 64) return static_cast<int64_t>(value);
    uint64_t sign_bit = 1ull << (bits - 1);
    uint64_t masked = value & low_mask(bits);
    return static_cast<int64_t>((masked ^ sign_bit) - sign_bit);
}

Status
ScalarType::validate() const
{
    switch (class_) {
      case ScalarClass::kUnsigned:
        if (bits_ < 1 || bits_ > 64) {
            return invalid_argument_error(
                str_format("uint width %u out of 1..64", bits_));
        }
        return Status::ok();
      case ScalarClass::kSigned:
        if (bits_ < 2 || bits_ > 64) {
            return invalid_argument_error(
                str_format("int width %u out of 2..64", bits_));
        }
        return Status::ok();
      case ScalarClass::kFloat:
        if (bits_ != 32 && bits_ != 64) {
            return invalid_argument_error(
                str_format("float width %u not 32 or 64", bits_));
        }
        return Status::ok();
      case ScalarClass::kBool:
        if (bits_ != 1) {
            return invalid_argument_error("bool must be 1 bit");
        }
        return Status::ok();
    }
    return internal_error("bad scalar class");
}

uint64_t
ScalarType::max_raw() const
{
    assert(is_integer() || class_ == ScalarClass::kBool);
    if (class_ == ScalarClass::kSigned) {
        return low_mask(bits_) >> 1;  // 0111...1
    }
    return low_mask(bits_);
}

int64_t
ScalarType::min_signed() const
{
    assert(is_signed());
    // Negate in unsigned arithmetic: for bits_ == 64 the result is
    // INT64_MIN, whose signed negation would overflow.
    return static_cast<int64_t>(-(1ull << (bits_ - 1)));
}

int64_t
ScalarType::max_signed() const
{
    assert(is_signed());
    return static_cast<int64_t>(max_raw());
}

bool
ScalarType::fits(uint64_t value) const
{
    switch (class_) {
      case ScalarClass::kBool:
        return value <= 1;
      case ScalarClass::kUnsigned:
        return value <= max_raw();
      case ScalarClass::kSigned: {
        int64_t sv = static_cast<int64_t>(value);
        return sv >= min_signed() && sv <= max_signed();
      }
      case ScalarClass::kFloat:
        return bits_ == 64 || (value >> 32) == 0;
    }
    return false;
}

Result<uint64_t>
ScalarType::checked_convert(uint64_t value) const
{
    if (!fits(value)) {
        return out_of_range_error(
            str_format("value %llu does not fit %s",
                       static_cast<unsigned long long>(value),
                       to_string().c_str()));
    }
    return value & (bits_ == 64 ? ~0ull : low_mask(bits_));
}

uint64_t
ScalarType::wrap(uint64_t value) const
{
    return value & low_mask(bits_);
}

std::string
ScalarType::to_string() const
{
    switch (class_) {
      case ScalarClass::kUnsigned: return str_format("uint%u", bits_);
      case ScalarClass::kSigned: return str_format("int%u", bits_);
      case ScalarClass::kFloat: return str_format("f%u", bits_);
      case ScalarClass::kBool: return "bool";
    }
    return "?";
}

}  // namespace bitc::repr
