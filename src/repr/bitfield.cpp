#include "repr/bitfield.hpp"

#include <cassert>

#include "repr/scalar_type.hpp"

namespace bitc::repr {

namespace {

uint64_t
read_bits_lsb(const uint8_t* buffer, size_t bit_offset, uint32_t width)
{
    uint64_t out = 0;
    size_t byte = bit_offset / 8;
    uint32_t shift = static_cast<uint32_t>(bit_offset % 8);
    uint32_t produced = 0;
    while (produced < width) {
        uint32_t take = 8 - shift;
        if (take > width - produced) take = width - produced;
        uint64_t bits =
            (static_cast<uint64_t>(buffer[byte]) >> shift) &
            low_mask(take);
        out |= bits << produced;
        produced += take;
        shift = 0;
        ++byte;
    }
    return out;
}

void
write_bits_lsb(uint8_t* buffer, size_t bit_offset, uint32_t width,
               uint64_t value)
{
    size_t byte = bit_offset / 8;
    uint32_t shift = static_cast<uint32_t>(bit_offset % 8);
    uint32_t consumed = 0;
    while (consumed < width) {
        uint32_t take = 8 - shift;
        if (take > width - consumed) take = width - consumed;
        uint8_t mask = static_cast<uint8_t>(low_mask(take) << shift);
        uint8_t bits = static_cast<uint8_t>(
            ((value >> consumed) & low_mask(take)) << shift);
        buffer[byte] = static_cast<uint8_t>((buffer[byte] & ~mask) | bits);
        consumed += take;
        shift = 0;
        ++byte;
    }
}

uint64_t
read_bits_msb(const uint8_t* buffer, size_t bit_offset, uint32_t width)
{
    // Network order: earlier bits are more significant in the result.
    uint64_t out = 0;
    size_t byte = bit_offset / 8;
    uint32_t used = static_cast<uint32_t>(bit_offset % 8);
    uint32_t remaining = width;
    while (remaining > 0) {
        uint32_t avail = 8 - used;
        uint32_t take = avail < remaining ? avail : remaining;
        // Bits [used, used+take) of this byte, MSB-first.
        uint64_t bits =
            (static_cast<uint64_t>(buffer[byte]) >> (avail - take)) &
            low_mask(take);
        out = (out << take) | bits;
        remaining -= take;
        used = 0;
        ++byte;
    }
    return out;
}

void
write_bits_msb(uint8_t* buffer, size_t bit_offset, uint32_t width,
               uint64_t value)
{
    size_t byte = bit_offset / 8;
    uint32_t used = static_cast<uint32_t>(bit_offset % 8);
    uint32_t remaining = width;
    while (remaining > 0) {
        uint32_t avail = 8 - used;
        uint32_t take = avail < remaining ? avail : remaining;
        uint32_t down = avail - take;
        uint8_t mask =
            static_cast<uint8_t>(low_mask(take) << down);
        uint8_t bits = static_cast<uint8_t>(
            ((value >> (remaining - take)) & low_mask(take)) << down);
        buffer[byte] = static_cast<uint8_t>((buffer[byte] & ~mask) | bits);
        remaining -= take;
        used = 0;
        ++byte;
    }
}

}  // namespace

uint64_t
read_bits(const uint8_t* buffer, size_t bit_offset, uint32_t width,
          BitOrder order)
{
    assert(width >= 1 && width <= 64);
    return order == BitOrder::kLsbFirst
               ? read_bits_lsb(buffer, bit_offset, width)
               : read_bits_msb(buffer, bit_offset, width);
}

void
write_bits(uint8_t* buffer, size_t bit_offset, uint32_t width,
           uint64_t value, BitOrder order)
{
    assert(width >= 1 && width <= 64);
    if (order == BitOrder::kLsbFirst) {
        write_bits_lsb(buffer, bit_offset, width, value);
    } else {
        write_bits_msb(buffer, bit_offset, width, value);
    }
}

}  // namespace bitc::repr
