/**
 * @file
 * Bit-granular loads and stores into byte buffers.
 *
 * Two bit orders are supported:
 *  - little-endian bit order: bit 0 is the LSB of byte 0 (in-memory
 *    structs, page-table entries on x86-class machines);
 *  - big-endian / network bit order: bit 0 is the MSB of byte 0 (the
 *    order RFC packet diagrams are drawn in).
 *
 * These are the primitives the layout engine and codecs are built on;
 * they are deliberately branch-light because the C3 experiment measures
 * their cost against natural-width accesses.
 */
#ifndef BITC_REPR_BITFIELD_HPP
#define BITC_REPR_BITFIELD_HPP

#include <cstddef>
#include <cstdint>

namespace bitc::repr {

/** Bit numbering convention within a buffer. */
enum class BitOrder : uint8_t {
    kLsbFirst,  ///< bit 0 = LSB of byte 0 (little-endian structs)
    kMsbFirst,  ///< bit 0 = MSB of byte 0 (network headers)
};

/**
 * Reads @p width bits (1..64) starting at absolute bit offset
 * @p bit_offset.  The caller guarantees the buffer covers the range.
 */
uint64_t read_bits(const uint8_t* buffer, size_t bit_offset,
                   uint32_t width, BitOrder order);

/**
 * Writes the low @p width bits of @p value at @p bit_offset, leaving
 * surrounding bits untouched.
 */
void write_bits(uint8_t* buffer, size_t bit_offset, uint32_t width,
                uint64_t value, BitOrder order);

}  // namespace bitc::repr

#endif  // BITC_REPR_BITFIELD_HPP
