/**
 * @file
 * The paper's home turf: a capability-system IPC fast path (the
 * EROS/Coyotos motivation), written in the BitC-like language and
 * statically verified.
 *
 * A 64-slot capability table is indexed by a uint6 — the bit-precise
 * type alone proves every table access in bounds (C3 feeding C1), so
 * the compiled fast path carries no bounds checks.  Messages move
 * through a ring buffer; rights are checked per invocation.
 *
 *   $ ./capability_ipc [round-trips]
 */
#include <cstdio>
#include <cstdlib>

#include "support/stats.hpp"
#include "vm/pipeline.hpp"

namespace {

const char* kKernelSource = R"bitc(
; Capability word layout: bit0 = send right, bit1 = recv right,
; bits 8.. = object id.
(define (cap-send? c : int64) : bool (== (bitand c 1) 1))
(define (cap-recv? c : int64) : bool (== (bitand c 2) 2))
(define (cap-object c : int64) : int64 (>> c 8))

(define (make-cap object : int64 send : int64 recv : int64) : int64
  (bitor (<< object 8) (bitor (bitand send 1) (<< (bitand recv 1) 1))))

; Ring-buffer endpoint: slots [0]=head [1]=tail [2..2+cap) = payload.
; Capacity 64, indices kept in range by masking.
(define (ep-send ep : (array int64 66) msg : int64) : int64
  (let ((tail (array-ref ep 1))
        (head (array-ref ep 0)))
    (if (>= (- tail head) 64)
        0 ; queue full
        (begin
          (array-set! ep (+ 2 (bitand tail 63)) msg)
          (array-set! ep 1 (+ tail 1))
          1))))

(define (ep-recv ep : (array int64 66)) : int64
  (let ((head (array-ref ep 0))
        (tail (array-ref ep 1)))
    (if (== head tail)
        -1 ; empty
        (let ((msg (array-ref ep (+ 2 (bitand head 63)))))
          (array-set! ep 0 (+ head 1))
          msg))))

; The IPC fast path: look up the capability (uint6 index: in bounds by
; type), check rights, deliver.  Returns the message on success,
; -1 on empty recv, -2 on rights failure, 0 on full queue.
(define (ipc-send ct : (array int64 64) cap : uint6
                  ep : (array int64 66) msg : int64) : int64
  (let ((c (array-ref ct cap)))
    (if (cap-send? c)
        (ep-send ep msg)
        -2)))

(define (ipc-recv ct : (array int64 64) cap : uint6
                  ep : (array int64 66)) : int64
  (let ((c (array-ref ct cap)))
    (if (cap-recv? c)
        (ep-recv ep)
        -2)))

; A round trip driven from inside the VM: client sends n messages to
; the server endpoint and sums the replies. Message payload is doubled
; by the "server".
(define (round-trips ct : (array int64 64) ep : (array int64 66)
                     n : int64) : int64
  (require (>= n 0))
  (let ((i 0) (acc 0))
    (while (< i n)
      (if (== (ipc-send ct 3 ep (+ i 1)) 1)
          (let ((m (ipc-recv ct 4 ep)))
            (if (>= m 0) (set! acc (+ acc (* 2 m))) (unit)))
          (unit))
      (set! i (+ i 1)))
    acc))

(define (setup-caps ct : (array int64 64)) : unit
  ; cap 3: send-only to the endpoint; cap 4: recv-only; cap 9: neither.
  (array-set! ct 3 (make-cap 17 1 0))
  (array-set! ct 4 (make-cap 17 0 1))
  (array-set! ct 9 (make-cap 99 0 0)))

(define (main n : int64) : int64
  (require (>= n 0))
  (let ((ct (array-make 64 0))
        (ep (array-make 66 0)))
    (setup-caps ct)
    ; Rights failures are errors, not traps:
    (assert (== (ipc-send ct 9 ep 123) -2))
    (assert (== (ipc-recv ct 3 ep) -2))
    (round-trips ct ep n)))
)bitc";

}  // namespace

int
main(int argc, char** argv)
{
    using namespace bitc;
    long long trips = argc > 1 ? std::atoll(argv[1]) : 200000;

    std::printf("=== capability IPC fast path (EROS/Coyotos flavour) "
                "===\n\n");

    vm::BuildOptions options;
    options.compiler.elide_proved_checks = true;
    auto built = vm::build_program(kKernelSource, options);
    if (!built.is_ok()) {
        std::printf("build failed: %s\n",
                    built.status().to_string().c_str());
        return 1;
    }

    const auto& verification = built.value()->verification;
    std::printf("verification: %zu/%zu obligations discharged "
                "statically (%.1f ms)\n",
                verification.proved(), verification.total(),
                verification.elapsed_ms);
    size_t checked_gets = 0;
    size_t unchecked_gets = 0;
    for (const auto& fn : built.value()->code.functions) {
        for (const auto& instr : fn.code) {
            if (instr.op == vm::Op::kArrayGet ||
                instr.op == vm::Op::kArraySet) {
                bool checked =
                    (instr.b &
                     (vm::kFlagCheckLower | vm::kFlagCheckUpper)) != 0;
                ++(checked ? checked_gets : unchecked_gets);
            }
        }
    }
    std::printf("array accesses: %zu check-free, %zu still checked\n"
                "(capability-table lookups are check-free purely "
                "because the index type is uint6)\n\n",
                unchecked_gets, checked_gets);

    // Run the kernel loop on the region heap: per-call message scratch
    // dies wholesale, the kernel allocation idiom.
    vm::VmConfig config;
    config.heap_words = 1 << 16;
    auto vm = built.value()->instantiate(config);

    uint64_t start = now_ns();
    auto result = vm->call("main", {trips});
    double ms = static_cast<double>(now_ns() - start) / 1e6;
    if (!result.is_ok()) {
        std::printf("trap: %s\n", result.status().to_string().c_str());
        return 1;
    }
    // acc = sum of 2*(i+1) for i in [0,n) = n(n+1)
    long long expected = trips * (trips + 1);
    std::printf("%lld IPC round trips in %.1f ms (%.0f round trips/ms, "
                "%.0f VM instructions each)\n",
                trips, ms, static_cast<double>(trips) / ms,
                static_cast<double>(vm->instructions_executed()) /
                    static_cast<double>(trips));
    std::printf("checksum: %lld (expected %lld) %s\n",
                static_cast<long long>(result.value()), expected,
                result.value() == expected ? "ok" : "MISMATCH");
    return result.value() == expected ? 0 : 1;
}
