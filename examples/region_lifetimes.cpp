/**
 * @file
 * Challenge C2 in practice: idiomatic manual storage management.
 *
 * Shows the region discipline directly against the ManagedHeap API —
 * nested regions, bulk release, the misuse the handle model catches —
 * then runs one identical mutator against all six storage policies and
 * prints the throughput/pause/footprint triangle the paper says a
 * systems language must let programmers navigate.
 *
 *   $ ./region_lifetimes [churn-objects]
 */
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "memory/generational_heap.hpp"
#include "memory/manual_heap.hpp"
#include "memory/marksweep_heap.hpp"
#include "memory/mutator.hpp"
#include "memory/refcount_heap.hpp"
#include "memory/region_heap.hpp"
#include "memory/semispace_heap.hpp"
#include "support/string_util.hpp"

namespace {

using namespace bitc;
using namespace bitc::mem;

void
demonstrate_regions()
{
    std::printf("--- the region idiom, step by step ---\n");
    RegionHeap heap(1 << 16);

    // A long-lived configuration object, then a per-request region.
    auto config = heap.allocate(4, 0, 1);
    if (!config.is_ok()) return;
    heap.store(config.value(), 0, 0xC0FFEE);

    for (int request = 0; request < 3; ++request) {
        size_t mark = heap.mark();
        // Request-scoped scratch: three buffers of varying size.
        for (uint32_t size : {16u, 64u, 8u}) {
            auto scratch = heap.allocate(size, 0, 2);
            if (scratch.is_ok()) {
                heap.store(scratch.value(), 0,
                           static_cast<uint64_t>(request));
            }
        }
        std::printf("  request %d: %zu live objects, %s in use\n",
                    request, heap.live_objects(),
                    human_bytes(heap.stats().words_in_use * 8).c_str());
        heap.release_to(mark);  // whole request dies at once
    }
    std::printf("  after releases: %zu live objects (the config "
                "object), %s in use\n",
                heap.live_objects(),
                human_bytes(heap.stats().words_in_use * 8).c_str());
    std::printf("  config payload intact: %#llx\n",
                static_cast<unsigned long long>(
                    heap.load(config.value(), 0)));

    // Misuse is caught: a handle released with its region is dead.
    size_t mark = heap.mark();
    auto ephemeral = heap.allocate(2, 0, 3);
    heap.release_to(mark);
    std::printf("  dangling handle after release is live? %s "
                "(use would assert in debug builds)\n\n",
                heap.is_live(ephemeral.value()) ? "yes (BUG)" : "no");
}

void
race_policies(uint64_t total)
{
    std::printf("--- one mutator, six storage policies ---\n");
    std::printf("  churn: %llu objects, window 256, ~8 slots each\n\n",
                static_cast<unsigned long long>(total));
    std::printf("  %-13s %10s %10s %10s %12s\n", "policy", "ms",
                "p99 pause", "max pause", "peak footprint");

    constexpr size_t kHeapWords = 1 << 20;
    struct Entry {
        const char* label;
        std::unique_ptr<ManagedHeap> heap;
    };
    Entry entries[] = {
        {"manual", std::make_unique<ManualHeap>(kHeapWords)},
        {"region", std::make_unique<RegionHeap>(kHeapWords)},
        {"refcount", std::make_unique<RefCountHeap>(kHeapWords)},
        {"mark-sweep", std::make_unique<MarkSweepHeap>(kHeapWords / 8)},
        {"semispace", std::make_unique<SemispaceHeap>(kHeapWords / 4)},
        {"generational",
         std::make_unique<GenerationalHeap>(kHeapWords / 8,
                                            kHeapWords / 64)},
    };
    for (Entry& entry : entries) {
        Rng rng(99);
        auto report = run_churn(*entry.heap, total, 256, 8, rng);
        if (!report.is_ok()) {
            std::printf("  %-13s failed: %s\n", entry.label,
                        report.status().to_string().c_str());
            continue;
        }
        const auto& pauses = entry.heap->pause_stats();
        std::printf("  %-13s %10.1f %9.0fus %9.0fus %12s\n",
                    entry.label, report.value().elapsed_ms,
                    pauses.count() > 0 ? pauses.percentile(0.99) / 1e3
                                       : 0.0,
                    pauses.count() > 0 ? pauses.max() / 1e3 : 0.0,
                    human_bytes(entry.heap->stats().peak_words_in_use *
                                8)
                        .c_str());
    }
    std::printf("\n  all six computed the same checksum; the paper's "
                "point is the\n  columns: manual/region buy "
                "predictability, tracing buys safety-\n  without-"
                "protocol, and a language must let you choose per "
                "subsystem.\n");
}

}  // namespace

int
main(int argc, char** argv)
{
    uint64_t total = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                              : 2000000;
    std::printf("=== storage management idioms (C2) ===\n\n");
    demonstrate_regions();
    race_policies(total);
    return 0;
}
