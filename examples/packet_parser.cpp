/**
 * @file
 * Challenge C3 in practice: a verified, bit-precise packet parser.
 *
 * Declares an IPv4-style header in the representation engine, prints
 * the computed layout, parses a randomized packet stream through the
 * bounds-checked codec, and contrasts a packed record with what C's
 * natural alignment would cost.
 *
 *   $ ./packet_parser [packet-count]
 */
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "interop/packet_stages.hpp"
#include "repr/codec.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

int
main(int argc, char** argv)
{
    using namespace bitc;
    using namespace bitc::repr;

    size_t packet_count = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                                   : 100000;

    std::printf("=== bit-precise packet parsing (C3) ===\n\n");

    // The header as the type system sees it.
    auto layout = compute_layout(ipv4_header_spec());
    if (!layout.is_ok()) {
        std::printf("layout error: %s\n",
                    layout.status().to_string().c_str());
        return 1;
    }
    std::printf("%s\n", layout.value().describe().c_str());
    std::printf("padding: %llu bits\n\n",
                static_cast<unsigned long long>(
                    layout.value().padding_bits()));

    // What natural (C struct) alignment would cost for the same fields.
    RecordSpec natural = ipv4_header_spec();
    natural.packing = Packing::kNatural;
    natural.pinned_byte_size.reset();
    auto natural_layout = compute_layout(natural);
    if (natural_layout.is_ok()) {
        std::printf("same fields, C natural alignment: %u bytes "
                    "(wire format: %u) -> %.1fx inflation\n\n",
                    natural_layout.value().byte_size(),
                    layout.value().byte_size(),
                    static_cast<double>(
                        natural_layout.value().byte_size()) /
                        layout.value().byte_size());
    }

    // A page-table entry, to show explicit placement.
    auto pte = compute_layout(page_table_entry_spec());
    if (pte.is_ok()) {
        std::printf("%s\n", pte.value().describe().c_str());
    }

    // Parse a stream and histogram protocols.
    const RecordCodec& codec = interop::packet_codec();
    Rng rng(2026);
    std::vector<uint8_t> wire(codec.layout().byte_size());
    uint64_t tcp = 0;
    uint64_t udp = 0;
    uint64_t invalid = 0;
    uint64_t ttl_sum = 0;
    uint64_t start = now_ns();
    for (size_t i = 0; i < packet_count; ++i) {
        interop::generate_packet(rng, wire);
        auto version = codec.read(wire, "version");
        auto protocol = codec.read(wire, "protocol");
        auto ttl = codec.read(wire, "ttl");
        if (!version.is_ok() || !protocol.is_ok() || !ttl.is_ok()) {
            std::printf("parse error\n");
            return 1;
        }
        if (version.value() != 4 || ttl.value() == 0) {
            ++invalid;
            continue;
        }
        ttl_sum += ttl.value();
        if (protocol.value() == 6) {
            ++tcp;
        } else if (protocol.value() == 17) {
            ++udp;
        }
    }
    double elapsed_ms = static_cast<double>(now_ns() - start) / 1e6;

    std::printf("parsed %zu packets in %.1f ms (%.1f Mpkt/s)\n",
                packet_count, elapsed_ms,
                static_cast<double>(packet_count) / elapsed_ms / 1e3);
    std::printf("  tcp=%llu udp=%llu invalid=%llu mean-ttl=%.1f\n",
                static_cast<unsigned long long>(tcp),
                static_cast<unsigned long long>(udp),
                static_cast<unsigned long long>(invalid),
                static_cast<double>(ttl_sum) /
                    static_cast<double>(packet_count - invalid));

    // The safety story: a truncated buffer is an error, not a read
    // off the end.
    std::vector<uint8_t> truncated(wire.begin(), wire.begin() + 10);
    auto bad = codec.read(truncated, "dst_addr");
    std::printf("\nreading dst_addr from a 10-byte buffer: %s\n",
                bad.status().to_string().c_str());
    return 0;
}
