/**
 * @file
 * Quickstart: the whole toolchain on one small program.
 *
 * Walks a BitC-like source file through every stage — parse, resolve,
 * typecheck, verify, compile — printing each stage's artefacts, then
 * runs it on two VM configurations and compares their cost profiles.
 *
 *   $ ./quickstart
 */
#include <cstdio>

#include "support/string_util.hpp"
#include "vm/pipeline.hpp"

namespace {

const char* kSource = R"bitc(
; Clamped sum over a fixed-size table, with contracts the verifier can
; discharge so the compiler can drop every runtime check.
(define (fill-squares a : (array int64 32)) : unit
  (let ((i 0))
    (while (< i 32)
      (invariant (>= i 0))
      (invariant (<= i 32))
      (array-set! a i (* i i))
      (set! i (+ i 1)))))

(define (table-sum a : (array int64 32) n : int64) : int64
  (require (>= n 0)) (require (<= n 32))
  (let ((i 0) (acc 0))
    (while (< i n)
      (invariant (>= i 0))
      (invariant (<= i n))
      (set! acc (+ acc (array-ref a i)))
      (set! i (+ i 1)))
    acc))

(define (main n : int64) : int64
  (require (>= n 0)) (require (<= n 32))
  (let ((a (array-make 32 0)))
    (fill-squares a)
    (table-sum a n)))
)bitc";

}  // namespace

int
main()
{
    using namespace bitc;

    std::printf("=== BitC-repro quickstart ===\n\n");
    std::printf("--- source ---\n%s\n", kSource);

    // Build: parse -> resolve -> typecheck -> verify -> compile.
    vm::BuildOptions options;
    options.compiler.elide_proved_checks = true;
    auto built = vm::build_program(kSource, options);
    if (!built.is_ok()) {
        std::printf("build failed: %s\n",
                    built.status().to_string().c_str());
        return 1;
    }
    vm::BuiltProgram& program = *built.value();

    // Inferred signatures.
    std::printf("--- inferred types ---\n");
    for (size_t i = 0; i < program.typed.function_count(); ++i) {
        const auto& decl = program.typed.program().functions[i];
        const auto& ft = program.typed.function_type(i);
        std::string sig;
        for (types::Type* p : ft.params) {
            sig += program.typed.store().to_string(p) + " -> ";
        }
        sig += program.typed.store().to_string(ft.result);
        std::printf("  %-14s : %s\n", decl.name.c_str(), sig.c_str());
    }

    // Verification: which checks were discharged statically?
    std::printf("\n--- verification ---\n%s",
                program.verification.to_string().c_str());

    // Generated code for main.
    std::printf("--- bytecode (main) ---\n");
    for (const auto& fn : program.code.functions) {
        if (fn.name == "main") {
            std::printf("%s", fn.disassemble().c_str());
        }
    }

    // Execute on two configurations.
    std::printf("\n--- execution ---\n");
    struct Config {
        const char* label;
        vm::VmConfig vm;
    };
    vm::VmConfig unboxed;
    vm::VmConfig boxed;
    boxed.mode = vm::ValueMode::kBoxed;
    boxed.heap = vm::HeapPolicy::kGenerational;
    const Config configs[] = {
        {"unboxed + region", unboxed},
        {"boxed + generational GC", boxed},
    };
    for (const Config& config : configs) {
        auto vm = program.instantiate(config.vm);
        auto result = vm->call("main", {10});
        if (!result.is_ok()) {
            std::printf("  %-24s trap: %s\n", config.label,
                        result.status().to_string().c_str());
            continue;
        }
        std::printf("  %-24s main(10) = %lld  (%llu instructions, "
                    "%llu heap allocations)\n",
                    config.label,
                    static_cast<long long>(result.value()),
                    static_cast<unsigned long long>(
                        vm->instructions_executed()),
                    static_cast<unsigned long long>(
                        vm->heap().stats().allocations));
    }

    std::printf("\nsum of squares 0..9 = 285 on every configuration —\n"
                "representation changes cost, never meaning.\n");
    return 0;
}
