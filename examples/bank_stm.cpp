/**
 * @file
 * Challenge C4 in practice: the composition problem, live.
 *
 * Reproduces the paper-era bank-account argument: individually-correct
 * lock-based operations compose into an observable inconsistency,
 * while transactions compose by construction.  Then races the four
 * ledger implementations on the same workload.
 *
 *   $ ./bank_stm [transfers-per-thread]
 */
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "concurrency/bank.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace {

using namespace bitc;
using namespace bitc::conc;

constexpr size_t kAccounts = 32;
constexpr int64_t kInitial = 1000;

/** Concurrent mixed workload against one ledger; returns ops/ms. */
double
hammer(Bank& bank, int threads, int ops_per_thread)
{
    uint64_t start = now_ns();
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&bank, t, ops_per_thread] {
            Rng rng(77 + t);
            for (int i = 0; i < ops_per_thread; ++i) {
                size_t from = rng.next_below(kAccounts);
                size_t to = rng.next_below(kAccounts);
                if (from == to) continue;
                (void)bank.transfer(from, to, rng.next_in(1, 20));
                if (i % 64 == 0) (void)bank.total();
            }
        });
    }
    for (auto& w : workers) w.join();
    double ms = static_cast<double>(now_ns() - start) / 1e6;
    return static_cast<double>(threads) * ops_per_thread / ms;
}

}  // namespace

int
main(int argc, char** argv)
{
    int ops = argc > 1 ? std::atoi(argv[1]) : 20000;

    std::printf("=== shared state and composition (C4) ===\n\n");

    // Act 1: the composition failure.
    std::printf("--- act 1: locks do not compose ---\n");
    {
        FineLockBank bank(2, 1000);
        std::atomic<bool> stop{false};
        std::atomic<int> torn{0};
        std::atomic<int> reads{0};
        std::thread observer([&] {
            while (!stop) {
                if (bank.unsafe_total() != 2000) ++torn;
                ++reads;
            }
        });
        for (int i = 0; i < 200000; ++i) {
            bank.nonatomic_transfer(0, 1, 10);
            bank.nonatomic_transfer(1, 0, 10);
        }
        stop = true;
        observer.join();
        std::printf("  two correct ops + no outer lock: observer saw "
                    "%d torn totals in %d reads\n",
                    torn.load(), reads.load());
        std::printf("  (the deposit/debit pair is correct; their "
                    "*composition* is the bug)\n\n");
    }

    // Act 2: STM composes, including blocking.
    std::printf("--- act 2: transactions compose ---\n");
    {
        StmBank bank(2, 0);
        std::atomic<bool> done{false};
        std::thread waiter([&] {
            bank.transfer_blocking(0, 1, 500);
            done = true;
        });
        std::printf("  blocking transfer of 500 from an empty account "
                    "(waiting via retry)...\n");
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        std::printf("  transfer completed early? %s\n",
                    done.load() ? "yes (BUG)" : "no (correct: blocked)");
        bank.deposit(0, 600);
        waiter.join();
        std::printf("  after deposit(600): transfer done, balances "
                    "[%lld, %lld]\n\n",
                    static_cast<long long>(bank.balance(0)),
                    static_cast<long long>(bank.balance(1)));
    }

    // Act 3: the cost of each discipline.
    std::printf("--- act 3: throughput of each discipline "
                "(%d transfers/thread, 4 threads) ---\n",
                ops);
    const int threads = 4;
    {
        CoarseLockBank bank(kAccounts, kInitial);
        std::printf("  %-12s %8.0f ops/ms (total preserved: %s)\n",
                    bank.name(), hammer(bank, threads, ops),
                    bank.total() == kAccounts * kInitial ? "yes" : "NO");
    }
    {
        FineLockBank bank(kAccounts, kInitial);
        std::printf("  %-12s %8.0f ops/ms (total preserved: %s)\n",
                    bank.name(), hammer(bank, threads, ops),
                    bank.total() == kAccounts * kInitial ? "yes" : "NO");
    }
    {
        StmBank bank(kAccounts, kInitial);
        double rate = hammer(bank, threads, ops);
        StmStats stats = bank.stm().stats();
        std::printf("  %-12s %8.0f ops/ms (total preserved: %s, "
                    "aborts: %llu of %llu)\n",
                    bank.name(), rate,
                    bank.total() == kAccounts * kInitial ? "yes" : "NO",
                    static_cast<unsigned long long>(stats.aborts),
                    static_cast<unsigned long long>(stats.commits +
                                                    stats.aborts));
    }
    {
        ActorBank bank(kAccounts, kInitial);
        std::printf("  %-12s %8.0f ops/ms (total preserved: %s)\n",
                    bank.name(), hammer(bank, threads, ops),
                    bank.total() == kAccounts * kInitial ? "yes" : "NO");
    }

    std::printf("\nevery discipline preserves the invariant; they "
                "differ in what composes\nand what it costs — the C4 "
                "trade space.\n");
    return 0;
}
